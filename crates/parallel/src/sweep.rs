//! Parallel coarse-grained sweeping (§VI-B).
//!
//! Each coarse chunk is split into `T` contiguous entry ranges of
//! near-equal incident-pair count; each thread merges its range on its
//! own copy of array `C`; the copies are combined with the corrected
//! chain-union scheme in a hierarchical (pairwise) reduction. Because the
//! combination yields the join of the per-thread partitions — which
//! equals the partition the serial chunk would produce — the parallel
//! sweep commits the same levels, cluster counts, and mode transitions as
//! the serial coarse sweep.
//!
//! # Steady-state allocation discipline
//!
//! Chunks run as tasks on a persistent [`WorkerPool`], and the big
//! per-chunk buffers are owned by the processor and **resynced**, not
//! reallocated:
//!
//! * the base snapshot and the `T` per-thread scratch copies of `C` are
//!   refreshed in place via [`ClusterArray::sync_from`]
//!   (`copy_from_slice`), replacing the `T + 1` O(|E|) clones the old
//!   implementation paid per chunk;
//! * the entry-weight vector is a reused buffer;
//! * when the processor is wired to the run's similarity list
//!   ([`shared_entries`](ParallelChunkProcessor::shared_entries), as the
//!   facade does), chunk entries are shared with the workers zero-copy —
//!   a chunk is located inside the list by pointer offset; an unwired
//!   processor falls back to buffering the chunk's entries.

use std::ops::Range;
use std::sync::{Arc, Mutex, PoisonError};

use linkclust_core::cluster_array::{partition_diff, MergeOutcome};
use linkclust_core::coarse::{
    coarse_sweep_with, ChunkProcessor, CoarseConfig, CoarseResult, SerialChunkProcessor,
};
use linkclust_core::telemetry::{Counter, Phase, Telemetry};
use linkclust_core::{ClusterArray, ConfigError, PairSimilarities, SimilarityEntry};
use linkclust_graph::{EdgeIndex, GraphView};

use crate::merge::merge_cluster_arrays;
use crate::pool::{balanced_partition_with_loads, Task, WorkerPool};

/// Where a chunk's entries live for the worker tasks: shared zero-copy
/// inside the run's similarity list, or buffered into a processor-owned
/// vector.
#[derive(Clone)]
enum EntrySlice {
    /// The chunk is `sims.entries()[offset..offset + len]`.
    Shared(Arc<PairSimilarities>, usize),
    /// The chunk was copied into this buffer.
    Buffered(Arc<Vec<SimilarityEntry>>),
}

impl EntrySlice {
    fn get(&self, r: Range<usize>) -> &[SimilarityEntry] {
        match self {
            EntrySlice::Shared(sims, offset) => &sims.entries()[offset + r.start..offset + r.end],
            EntrySlice::Buffered(buf) => &buf[r],
        }
    }
}

/// If `sub` is a sub-slice of `full` (same allocation), returns its
/// element offset. Sound without comparing contents: the caller holds the
/// `Arc` keeping `full`'s allocation alive, so no other live allocation
/// can overlap its address range.
fn slice_offset_within(full: &[SimilarityEntry], sub: &[SimilarityEntry]) -> Option<usize> {
    let size = std::mem::size_of::<SimilarityEntry>();
    if sub.is_empty() {
        return None;
    }
    let base = full.as_ptr() as usize;
    let p = sub.as_ptr() as usize;
    if p < base
        || p + std::mem::size_of_val(sub) > base + std::mem::size_of_val(full)
        || !(p - base).is_multiple_of(size)
    {
        return None;
    }
    let offset = (p - base) / size;
    debug_assert!(std::ptr::eq(full[offset..].as_ptr(), sub.as_ptr()));
    Some(offset)
}

fn lock_scratch(slot: &Mutex<ClusterArray>) -> std::sync::MutexGuard<'_, ClusterArray> {
    // A poisoned slot is recoverable: the next chunk resyncs it from the
    // committed array before reading it.
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A [`ChunkProcessor`] that fans each chunk out over `threads` worker
/// threads (per-thread copies of `C`, hierarchical combination).
///
/// The processor owns its execution context and reuses it across chunks:
/// a persistent [`WorkerPool`] (wired by the facade via
/// [`with_pool`](Self::with_pool), or created lazily on the first
/// parallel chunk), per-thread scratch arrays resynced in place, and a
/// reused weight buffer — see the module docs for the full allocation
/// discipline.
#[derive(Debug)]
pub struct ParallelChunkProcessor {
    threads: usize,
    min_entries_per_thread: usize,
    telemetry: Telemetry,
    pool: Option<Arc<WorkerPool>>,
    shared: Option<Arc<PairSimilarities>>,
    slot_of_edge: Option<Arc<Vec<u32>>>,
    entry_buf: Arc<Vec<SimilarityEntry>>,
    base: Arc<ClusterArray>,
    scratch: Vec<Arc<Mutex<ClusterArray>>>,
    weights: Vec<u64>,
}

impl Clone for ParallelChunkProcessor {
    /// Clones the configuration and the shared read-only context (pool,
    /// similarity list) but gives the clone fresh scratch state, so two
    /// clones can process chunks concurrently.
    fn clone(&self) -> Self {
        ParallelChunkProcessor {
            threads: self.threads,
            min_entries_per_thread: self.min_entries_per_thread,
            telemetry: self.telemetry.clone(),
            pool: self.pool.clone(),
            shared: self.shared.clone(),
            slot_of_edge: self.slot_of_edge.clone(),
            entry_buf: Arc::new(Vec::new()),
            base: Arc::new(ClusterArray::new(0)),
            scratch: Vec::new(),
            weights: Vec::new(),
        }
    }
}

impl ParallelChunkProcessor {
    /// Creates a processor with `threads` worker threads; rejects
    /// `threads == 0` with [`ConfigError::ZeroThreads`].
    pub fn new(threads: usize) -> Result<Self, ConfigError> {
        if threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(ParallelChunkProcessor {
            threads,
            min_entries_per_thread: 8,
            telemetry: Telemetry::disabled(),
            pool: None,
            shared: None,
            slot_of_edge: None,
            entry_buf: Arc::new(Vec::new()),
            base: Arc::new(ClusterArray::new(0)),
            scratch: Vec::new(),
            weights: Vec::new(),
        })
    }

    /// Chunks with fewer than `n` entries per thread fall back to serial
    /// processing (task dispatch overhead dominates tiny chunks). Default
    /// is 8.
    #[must_use]
    pub fn min_entries_per_thread(mut self, n: usize) -> Self {
        self.min_entries_per_thread = n.max(1);
        self
    }

    /// Attaches a telemetry handle: chunk fan-out and combination are
    /// timed ([`Phase::ChunkProcess`] / [`Phase::ChunkCombine`]), chunk
    /// and combine counters recorded, and per-thread incident-pair loads
    /// fed into the report's thread-item counts.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs chunk tasks on `pool` instead of lazily creating a private
    /// one — how the facade makes one persistent pool serve init, sort,
    /// and every chunk of the sweep. Overrides the thread count given to
    /// [`new`](Self::new) with the pool's.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.threads = pool.threads();
        self.pool = Some(pool);
        self
    }

    /// Declares the similarity list the sweep's chunks are slices of.
    /// Chunk entries are then shared with the worker tasks zero-copy (a
    /// chunk is located inside the list by pointer offset); without this,
    /// every parallel chunk's entries are copied into a buffer first.
    #[must_use]
    pub fn shared_entries(mut self, sims: Arc<PairSimilarities>) -> Self {
        self.shared = Some(sims);
        self
    }

    fn pool_ctx(&mut self) -> Arc<WorkerPool> {
        if let Some(pool) = &self.pool {
            return Arc::clone(pool);
        }
        let pool = Arc::new(WorkerPool::new(self.threads).with_telemetry(self.telemetry.clone()));
        self.pool = Some(Arc::clone(&pool));
        pool
    }

    /// The `Arc`-shared edge→slot permutation, re-copied only when its
    /// contents change (once per sweep).
    fn slot_ctx(&mut self, slot_of_edge: &[u32]) -> Arc<Vec<u32>> {
        if let Some(cached) = &self.slot_of_edge {
            if cached.as_slice() == slot_of_edge {
                return Arc::clone(cached);
            }
        }
        let fresh = Arc::new(slot_of_edge.to_vec());
        self.slot_of_edge = Some(Arc::clone(&fresh));
        fresh
    }

    /// Resolves where the chunk's entries live for the tasks: zero-copy
    /// inside the wired similarity list when possible, else buffered.
    fn entry_source(&mut self, entries: &[SimilarityEntry]) -> EntrySlice {
        if let Some(shared) = &self.shared {
            if let Some(offset) = slice_offset_within(shared.entries(), entries) {
                return EntrySlice::Shared(Arc::clone(shared), offset);
            }
        }
        let mut buf = Arc::get_mut(&mut self.entry_buf).map(std::mem::take).unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(entries);
        self.entry_buf = Arc::new(buf);
        EntrySlice::Buffered(Arc::clone(&self.entry_buf))
    }

    /// Refreshes the shared base snapshot from the committed array,
    /// stealing the previous snapshot's allocation when no task still
    /// holds it (the steady state).
    fn base_ctx(&mut self, c: &ClusterArray) -> Arc<ClusterArray> {
        let mut base = match Arc::get_mut(&mut self.base) {
            Some(prev) => std::mem::replace(prev, ClusterArray::new(0)),
            None => ClusterArray::new(0),
        };
        base.sync_from(c);
        self.base = Arc::new(base);
        Arc::clone(&self.base)
    }
}

impl ChunkProcessor for ParallelChunkProcessor {
    fn process_entries(
        &mut self,
        index: &Arc<EdgeIndex>,
        slot_of_edge: &[u32],
        entries: &[SimilarityEntry],
        c: &mut ClusterArray,
    ) -> Vec<MergeOutcome> {
        let telemetry = self.telemetry.clone();
        telemetry.add(Counter::ChunksProcessed, 1);
        if self.threads == 1 || entries.len() < self.threads * self.min_entries_per_thread {
            telemetry.add(Counter::SerialFallbackChunks, 1);
            let span = telemetry.span(Phase::ChunkProcess);
            let out = SerialChunkProcessor.process_entries(index, slot_of_edge, entries, c);
            span.finish();
            return out;
        }
        self.weights.clear();
        self.weights.extend(entries.iter().map(|e| e.pair_count() as u64));
        let (ranges, loads) = balanced_partition_with_loads(&self.weights, self.threads);
        if telemetry.is_enabled() {
            for (thread, &load) in loads.iter().enumerate() {
                telemetry.thread_items(thread, load);
            }
        }

        let pool = self.pool_ctx();
        let slot = self.slot_ctx(slot_of_edge);
        let source = self.entry_source(entries);
        let base = self.base_ctx(c);
        let k = ranges.len();
        while self.scratch.len() < k {
            self.scratch.push(Arc::new(Mutex::new(ClusterArray::new(0))));
        }

        // Step 1: every thread merges its entry range on its own scratch
        // copy, resynced in place from the base snapshot.
        let span = telemetry.span(Phase::ChunkProcess);
        let tasks: Vec<Task<()>> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let index = Arc::clone(index);
                let slot = Arc::clone(&slot);
                let base = Arc::clone(&base);
                let source = source.clone();
                let scratch = Arc::clone(&self.scratch[i]);
                Box::new(move || {
                    let mut local = lock_scratch(&scratch);
                    local.sync_from(&base);
                    SerialChunkProcessor.process_entries(&index, &slot, source.get(r), &mut local);
                }) as Task<()>
            })
            .collect();
        let _: Vec<()> = pool.run_tasks(tasks);
        span.finish();

        // Step 2: hierarchical pairwise combination, in place on the
        // scratch slots (disjoint pairs per round, so the locks never
        // contend), finishing with a short serial fold.
        let span = telemetry.span(Phase::ChunkCombine);
        telemetry.add(Counter::ArrayCombines, (k - 1) as u64);
        let mut alive: Vec<usize> = (0..k).collect();
        while alive.len() > 3 {
            let carry = if alive.len() % 2 == 1 { alive.pop() } else { None };
            let mut tasks: Vec<Task<usize>> = Vec::with_capacity(alive.len() / 2);
            let mut it = alive.into_iter();
            while let (Some(a), Some(b)) = (it.next(), it.next()) {
                let sa = Arc::clone(&self.scratch[a]);
                let sb = Arc::clone(&self.scratch[b]);
                tasks.push(Box::new(move || {
                    let mut target = lock_scratch(&sa);
                    let other = lock_scratch(&sb);
                    merge_cluster_arrays(&mut target, &other);
                    a
                }));
            }
            alive = pool.run_tasks(tasks);
            alive.extend(carry);
        }
        let mut merged = lock_scratch(&self.scratch[alive[0]]);
        for &j in &alive[1..] {
            let other = lock_scratch(&self.scratch[j]);
            merge_cluster_arrays(&mut merged, &other);
        }
        span.finish();

        // Debug builds verify the combined array is still a valid
        // descending-chain partition and only merged (never split) the
        // clusters of the pre-chunk state.
        linkclust_core::invariants::debug_check_cluster_array(&merged);
        linkclust_core::invariants::debug_check_refinement(&base, &merged);

        let outcomes = partition_diff(&base, &merged);
        c.sync_from(&merged);
        outcomes
    }
}

/// Runs the coarse-grained sweep with chunks processed by `threads`
/// worker threads. Produces the same partition trajectory (levels,
/// cluster counts, epoch decisions) as the serial
/// [`coarse_sweep`](linkclust_core::coarse::coarse_sweep).
///
/// Clones the similarity list once so the chunk workers can share it
/// zero-copy; use [`parallel_coarse_sweep_shared`] to avoid even that
/// copy when you already hold the list in an `Arc`.
///
/// # Panics
///
/// Panics if `threads == 0`, or under the same conditions as the serial
/// coarse sweep (unsorted input, degenerate config).
///
/// # Examples
///
/// ```
/// use linkclust_graph::generate::{gnm, WeightMode};
/// use linkclust_core::init::compute_similarities;
/// use linkclust_core::coarse::CoarseConfig;
/// use linkclust_parallel::parallel_coarse_sweep;
///
/// let g = gnm(30, 120, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
/// let sims = compute_similarities(&g).into_sorted();
/// let cfg = CoarseConfig { phi: 10, initial_chunk: 16, ..Default::default() };
/// let r = parallel_coarse_sweep(&g, &sims, cfg, 4);
/// assert!(r.dendrogram().merge_count() > 0);
/// ```
#[must_use]
pub fn parallel_coarse_sweep<G: GraphView + ?Sized>(
    g: &G,
    sorted: &PairSimilarities,
    config: CoarseConfig,
    threads: usize,
) -> CoarseResult {
    parallel_coarse_sweep_shared(g, &Arc::new(sorted.clone()), config, threads)
}

/// [`parallel_coarse_sweep`] over an `Arc`-shared similarity list: the
/// chunk workers read the entries zero-copy straight from `sorted`.
///
/// # Panics
///
/// Panics if `threads == 0`, or under the same conditions as the serial
/// coarse sweep (unsorted input, degenerate config).
#[must_use]
pub fn parallel_coarse_sweep_shared<G: GraphView + ?Sized>(
    g: &G,
    sorted: &Arc<PairSimilarities>,
    config: CoarseConfig,
    threads: usize,
) -> CoarseResult {
    let mut processor = ParallelChunkProcessor::new(threads)
        .unwrap_or_else(|e| panic!("{e}"))
        .shared_entries(Arc::clone(sorted));
    coarse_sweep_with(g, sorted, config, &mut processor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::coarse::coarse_sweep;
    use linkclust_core::init::compute_similarities;
    use linkclust_core::reference::canonical_labels;
    use linkclust_graph::generate::{barabasi_albert, gnm, WeightMode};

    fn canon(labels: &[u32]) -> Vec<usize> {
        canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
    }

    #[test]
    fn matches_serial_coarse_trajectory() {
        for seed in 0..3 {
            let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let sims = compute_similarities(&g).into_sorted();
            let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
            let serial = coarse_sweep(&g, &sims, cfg);
            for threads in [2, 4] {
                // Force parallel processing even for small chunks so the
                // combination path is exercised.
                let mut proc =
                    ParallelChunkProcessor::new(threads).unwrap().min_entries_per_thread(1);
                let par = coarse_sweep_with(&g, &sims, cfg, &mut proc);
                // The partition trajectory must match level by level.
                let sl: Vec<_> = serial.levels().iter().map(|l| (l.level, l.clusters)).collect();
                let pl: Vec<_> = par.levels().iter().map(|l| (l.level, l.clusters)).collect();
                assert_eq!(sl, pl, "seed {seed} threads {threads}");
                assert_eq!(
                    canon(&serial.output().edge_assignments()),
                    canon(&par.output().edge_assignments()),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn shared_entries_path_matches_buffered_path() {
        let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 8);
        let sims = Arc::new(compute_similarities(&g).into_sorted());
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let mut buffered = ParallelChunkProcessor::new(3).unwrap().min_entries_per_thread(1);
        let a = coarse_sweep_with(&g, &sims, cfg, &mut buffered);
        let mut shared = ParallelChunkProcessor::new(3)
            .unwrap()
            .min_entries_per_thread(1)
            .shared_entries(Arc::clone(&sims));
        let b = coarse_sweep_with(&g, &sims, cfg, &mut shared);
        assert_eq!(a.levels(), b.levels());
        assert_eq!(canon(&a.output().edge_assignments()), canon(&b.output().edge_assignments()));
    }

    #[test]
    fn processor_reuse_across_graphs_resyncs_context() {
        // A single processor must stay correct when reused across runs
        // over different graphs (the slot cache and scratch arrays are
        // per-chunk context that has to resync).
        let g1 = gnm(40, 170, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 1);
        let g2 = gnm(40, 170, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 2);
        let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
        let mut proc = ParallelChunkProcessor::new(2).unwrap().min_entries_per_thread(1);
        for g in [&g1, &g2, &g1] {
            let sims = compute_similarities(g).into_sorted();
            let serial = coarse_sweep(g, &sims, cfg);
            let par = coarse_sweep_with(g, &sims, cfg, &mut proc);
            assert_eq!(serial.levels(), par.levels());
        }
    }

    #[test]
    fn power_law_graph_parallel_partition_is_correct() {
        let g = barabasi_albert(120, 5, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 4);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 1, initial_chunk: 32, ..Default::default() };
        // phi = 1 processes everything: final partition must equal the
        // fine-grained single-linkage partition.
        let fine = linkclust_core::LinkClustering::new().run(&g);
        let mut proc = ParallelChunkProcessor::new(3).unwrap().min_entries_per_thread(1);
        let par = coarse_sweep_with(&g, &sims, cfg, &mut proc);
        assert_eq!(canon(&fine.edge_assignments()), canon(&par.output().edge_assignments()));
    }

    #[test]
    fn single_thread_processor_is_serial() {
        let g = gnm(25, 80, WeightMode::Unit, 6);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 3, initial_chunk: 4, ..Default::default() };
        let serial = coarse_sweep(&g, &sims, cfg);
        let par = parallel_coarse_sweep(&g, &sims, cfg, 1);
        assert_eq!(serial.levels(), par.levels());
    }

    #[test]
    fn dendrogram_cluster_accounting_is_exact() {
        let g = gnm(40, 170, WeightMode::Uniform { lo: 0.3, hi: 1.6 }, 2);
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 4, initial_chunk: 16, ..Default::default() };
        let mut proc = ParallelChunkProcessor::new(4).unwrap().min_entries_per_thread(1);
        let r = coarse_sweep_with(&g, &sims, cfg, &mut proc);
        // edge_count - merges == clusters at the last level.
        let last = r.levels().last().expect("at least one level");
        assert_eq!(r.dendrogram().final_cluster_count(), last.clusters);
    }
}

#[cfg(test)]
mod processor_equivalence_tests {
    use super::*;
    use linkclust_core::coarse::SerialChunkProcessor;
    use linkclust_core::init::compute_similarities;
    use linkclust_graph::generate::{gnm, WeightMode};

    #[test]
    fn processor_matches_serial_on_first_chunk() {
        let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 0);
        let index = Arc::new(EdgeIndex::for_graph(&g));
        let sims = compute_similarities(&g).into_sorted();
        let entries = sims.entries();
        let slot: Vec<u32> = (0..g.edge_count() as u32).collect();
        // take first few entries as the chunk
        for take in [3usize, 5, 8, 12, 20] {
            let chunk = &entries[..take];
            let mut c_serial = ClusterArray::new(g.edge_count());
            SerialChunkProcessor.process_entries(&index, &slot, chunk, &mut c_serial);
            let mut c_par = ClusterArray::new(g.edge_count());
            let mut proc = ParallelChunkProcessor::new(2).unwrap().min_entries_per_thread(1);
            proc.process_entries(&index, &slot, chunk, &mut c_par);
            assert_eq!(c_serial.assignments(), c_par.assignments(), "take={take}");
            assert_eq!(c_serial.cluster_count(), c_par.cluster_count(), "take={take}");
            assert_eq!(c_par.cluster_count(), c_par.count_roots(), "live counter must stay exact");
        }
    }
}
