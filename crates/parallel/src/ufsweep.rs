//! The union-find sweep engine: parallel Phase II with an exact serial
//! dendrogram.
//!
//! The fine-grained sweep (Algorithm 2) looks inherently sequential — it
//! replays union operations in similarity order against one shared
//! cluster array. The key observation (the single-linkage framing of
//! Dhulipala et al. and ParChain, see PAPERS.md) is that the *surviving*
//! operations — exactly the ones the serial sweep turns into merges —
//! are the unique minimum spanning forest of the operation multigraph
//! when each operation is weighted by its global rank in the sweep
//! order. Minimum spanning forests are order-free to compute, which
//! breaks the sequential chain:
//!
//! 1. **Partition** the similarity-sorted entries into `P` contiguous
//!    blocks of near-equal incident-pair weight.
//! 2. **Local pass** (parallel, the dominant cost): each block resolves
//!    its `(vᵢ,vₖ)/(vⱼ,vₖ)` edge pairs through the [`EdgeIndex`] and
//!    compresses its operation stream with a private serial
//!    [`UnionFind`] — an operation that fails locally is connected by
//!    earlier same-block operations and can never survive globally, so
//!    each block emits only a spanning forest of *candidates*
//!    (≤ `m − 1` per block, typically far fewer than its `K₂` share).
//! 3. **Boundary stitch** (parallel): a Borůvka-style MSF filter over
//!    the concatenated candidates on a lock-free
//!    [`ConcurrentUnionFind`], selecting each component's minimum-rank
//!    incident candidate by `fetch_min` and uniting the winners. With
//!    distinct weights (global candidate order) the MSF is unique, so
//!    the surviving set is *exactly* the serial sweep's merge set.
//! 4. **Replay** (serial, `O(S α)` for `S ≤ m − 1` survivors): the
//!    survivors replayed in rank order through a min-tracking
//!    [`UnionFind`] reproduce the serial [`MergeRecord`] stream —
//!    levels, left/right/into labels, and per-merge scores —
//!    bit-for-bit.
//!
//! Exactness of step 3 rests on the cycle property: a locally-dropped
//! operation closes a cycle in which it carries the maximum rank, so
//! removing it cannot change the minimum spanning forest; and on
//! uniqueness: distinct weights make the MSF — and therefore the
//! survivor set — independent of how it is computed. The serial sweep
//! *is* Kruskal's algorithm on the operation stream (process by
//! ascending rank, keep what connects two components), so MSF =
//! serial merge set.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use linkclust_core::dendrogram::{Dendrogram, MergeRecord};
use linkclust_core::sweep::{SweepConfig, SweepOutput};
use linkclust_core::telemetry::{Counter, Phase, Telemetry};
use linkclust_core::unionfind::{ConcurrentUnionFind, UnionFind};
use linkclust_core::{PairSimilarities, SimilarityEntry};
use linkclust_graph::{EdgeIndex, GraphView};

use crate::pool::{balanced_partition_with_loads, partition_ranges, Task, WorkerPool};

/// One union operation that survived its block's local pass. Its weight
/// in the stitch is its index in the concatenated candidate list, which
/// equals its global sweep rank order (blocks are contiguous and
/// in-block order is preserved).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// Slot of edge `(vᵢ, vₖ)` — the first operand of the union.
    pub s1: u32,
    /// Slot of edge `(vⱼ, vₖ)` — the second operand.
    pub s2: u32,
    /// Index of the generating entry in the sorted similarity list
    /// (provides the merge score during replay).
    pub entry: u32,
}

/// Runs the union-find sweep engine: the parallel Phase II that
/// reproduces the serial [`sweep_with`](linkclust_core::sweep::sweep_with)
/// output node-for-node (dendrogram structure, labels, and merge scores
/// compare bit-identical).
///
/// The whole engine runs under one [`Phase::Sweep`] span (so reports
/// stay comparable across engines) with [`Phase::SweepLocal`],
/// [`Phase::SweepStitch`] and [`Phase::SweepReplay`] sub-spans.
///
/// # Panics
///
/// Panics if `sorted` is unsorted, refers to vertices/edges not in `g`,
/// or exceeds the workspace-wide `u32` id budget (more than `u32::MAX`
/// entries or candidate operations).
#[must_use]
pub fn ufsweep_with<G: GraphView + ?Sized>(
    g: &G,
    sorted: &Arc<PairSimilarities>,
    config: SweepConfig,
    pool: &Arc<WorkerPool>,
    telemetry: &Telemetry,
) -> SweepOutput {
    assert!(sorted.is_sorted(), "sweep requires a sorted pair list; call into_sorted()");
    let span = telemetry.span(Phase::Sweep);
    let m = g.edge_count();
    let index = Arc::new(EdgeIndex::for_graph(g));
    let slot_of_edge = Arc::new(config.edge_order.permutation(m));

    // The serial sweep stops at the first entry below the threshold (the
    // list is sorted); mirror that exactly with a linear cutoff.
    let entries = sorted.entries();
    let live_entries = match config.min_similarity {
        Some(theta) => entries.iter().position(|e| e.score < theta).unwrap_or(entries.len()),
        None => entries.len(),
    };
    assert!(u32::try_from(live_entries).is_ok(), "entry count exceeds the u32 id budget");
    let weights: Vec<u64> = entries[..live_entries].iter().map(|e| e.pair_count() as u64).collect();
    let pairs_processed: u64 = weights.iter().sum();

    // Step 1 + 2: weight-balanced contiguous blocks, local candidate
    // passes in parallel on the run's pool.
    let (ranges, _loads) = balanced_partition_with_loads(&weights, pool.threads());
    let locals: Vec<Vec<Candidate>> = pool.run_tasks(
        ranges
            .into_iter()
            .map(|range| {
                let sorted = Arc::clone(sorted);
                let index = Arc::clone(&index);
                let slot_of_edge = Arc::clone(&slot_of_edge);
                let telemetry = telemetry.clone();
                Box::new(move || {
                    local_candidates(sorted.entries(), range, &index, &slot_of_edge, m, &telemetry)
                }) as Task<Vec<Candidate>>
            })
            .collect(),
    );
    let total: usize = locals.iter().map(Vec::len).sum();
    assert!(u32::try_from(total).is_ok(), "candidate count exceeds the u32 id budget");
    let mut candidates = Vec::with_capacity(total);
    for block in locals {
        candidates.extend_from_slice(&block);
    }
    let candidates = Arc::new(candidates);

    // Step 3: the Borůvka MSF filter over the concatenated candidates.
    let stitch_span = telemetry.span(Phase::SweepStitch);
    let survivors = boruvka_filter(m, &candidates, pool);
    stitch_span.finish();

    // Step 4: exact serial replay of the survivors in rank order.
    let replay_span = telemetry.span(Phase::SweepReplay);
    let (merges, scores) = replay_survivors(m, &candidates, &survivors, entries);
    replay_span.finish();

    span.finish();
    telemetry.add(Counter::MergesApplied, merges.len() as u64);
    telemetry.add(Counter::PairsProcessed, pairs_processed);
    let dendrogram = Dendrogram::from_merges(m, merges);
    linkclust_core::invariants::debug_check_dendrogram(&dendrogram);
    let slot_of_edge = Arc::try_unwrap(slot_of_edge).unwrap_or_else(|shared| (*shared).clone());
    SweepOutput::with_scores(dendrogram, slot_of_edge, scores)
}

/// One block's local pass: resolves the block's union operations and
/// compresses them to a spanning forest of candidates with a private
/// serial union-find. Runs on a pool worker under a
/// [`Phase::SweepLocal`] span.
///
/// # Panics
///
/// Panics if an entry's common neighbor has no edge to either endpoint
/// in `index` — that would mean the similarity phase and the edge index
/// disagree about the graph.
fn local_candidates(
    entries: &[SimilarityEntry],
    range: Range<usize>,
    index: &EdgeIndex,
    slot_of_edge: &[u32],
    m: usize,
    telemetry: &Telemetry,
) -> Vec<Candidate> {
    let span = telemetry.span(Phase::SweepLocal);
    let mut uf = UnionFind::new(m);
    let mut out = Vec::new();
    for ei in range {
        let entry = &entries[ei];
        let (vi, vj) = (entry.pair.first(), entry.pair.second());
        for &vk in &entry.common_neighbors {
            let e1 = index.edge_between(vi, vk).expect("common neighbor implies edge (vi, vk)");
            let e2 = index.edge_between(vj, vk).expect("common neighbor implies edge (vj, vk)");
            let s1 = slot_of_edge[e1.index()];
            let s2 = slot_of_edge[e2.index()];
            if uf.union(s1 as usize, s2 as usize) {
                out.push(Candidate { s1, s2, entry: ei as u32 });
            }
        }
    }
    span.finish();
    out
}

/// The serial MSF oracle: Kruskal's filter over the candidates in rank
/// order — precisely what the serial sweep computes over the full
/// operation stream. Returns the surviving candidate indices in
/// ascending rank order.
#[must_use]
pub fn kruskal_filter(m: usize, candidates: &[Candidate]) -> Vec<u32> {
    let mut uf = UnionFind::new(m);
    let mut out = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        if uf.union(c.s1 as usize, c.s2 as usize) {
            out.push(i as u32);
        }
    }
    out
}

/// Sentinel for "no candidate selected yet" in the per-root best slots.
const NO_CANDIDATE: u64 = u64::MAX;

/// Packs a round-stamped selection key: keys from the current round
/// always compare below keys from earlier rounds (higher round → smaller
/// high word), so stale slots lose every `fetch_min` automatically and
/// no reset pass or extra barrier is needed between rounds. Within a
/// round, the low word makes the minimum key the minimum candidate rank.
/// Rounds start at 1 so every key is strictly below [`NO_CANDIDATE`].
const fn stamp(round: u32, ci: u32) -> u64 {
    (((u32::MAX - round) as u64) << 32) | ci as u64
}

/// The parallel Borůvka MSF filter: repeatedly select each component's
/// minimum-rank incident candidate (`fetch_min` on a per-root slot) and
/// unite the winners on a lock-free [`ConcurrentUnionFind`]. With
/// distinct weights the winner set of a round is cycle-free and the
/// final survivor set is the unique MSF — identical to
/// [`kruskal_filter`]. Returns surviving candidate indices in ascending
/// rank order.
///
/// Every pass (select, claim, unite) fans out over the pool; rounds are
/// separated by the pool's own result rendezvous, so the concurrent
/// union-find is the only cross-thread state shared within a pass.
///
/// # Panics
///
/// Panics if a round's claimed winners do not form a forest — impossible
/// for candidate lists produced by the block-local passes (distinct
/// ranks, each component claims its unique minimum), so a panic here
/// means a caller handed in candidates with duplicated ranks.
#[must_use]
pub fn boruvka_filter(m: usize, candidates: &[Candidate], pool: &Arc<WorkerPool>) -> Vec<u32> {
    let cuf = Arc::new(ConcurrentUnionFind::new(m));
    let best: Arc<Vec<AtomicU64>> =
        Arc::new((0..m).map(|_| AtomicU64::new(NO_CANDIDATE)).collect());
    let candidates = Arc::new(candidates.to_vec());
    let mut live: Arc<Vec<u32>> = Arc::new((0..candidates.len() as u32).collect());
    let mut survivors: Vec<u32> = Vec::new();
    let mut round: u32 = 1;
    while !live.is_empty() {
        // Pass 1 (select): resolve each live candidate's roots; drop
        // self-loops, offer the rest to both roots' best slots. Returns
        // the still-open candidates per range.
        let open: Vec<Vec<u32>> = run_over_ranges(pool, live.len(), |range| {
            let live = Arc::clone(&live);
            let candidates = Arc::clone(&candidates);
            let cuf = Arc::clone(&cuf);
            let best = Arc::clone(&best);
            Box::new(move || {
                let mut open = Vec::new();
                for &ci in &live[range] {
                    let c = candidates[ci as usize];
                    let ra = cuf.find(c.s1);
                    let rb = cuf.find(c.s2);
                    if ra == rb {
                        continue;
                    }
                    let key = stamp(round, ci);
                    // The claim pass happens-after every fetch_min via
                    // the pool's result rendezvous (run_tasks join), not
                    // via this RMW's ordering.
                    // ordering: Relaxed is enough, see above.
                    best[ra as usize].fetch_min(key, Ordering::Relaxed);
                    best[rb as usize].fetch_min(key, Ordering::Relaxed);
                    open.push(ci);
                }
                open
            })
        });
        // Pass 2 (claim): a candidate wins if it is the selected minimum
        // of either of its roots (roots are stable — no unites have
        // happened since pass 1). Returns (winners, retained) per range.
        let claimed: Vec<(Vec<u32>, Vec<u32>)> = {
            let open = Arc::new(open);
            run_over_ranges(pool, open.len(), |range| {
                let open = Arc::clone(&open);
                let candidates = Arc::clone(&candidates);
                let cuf = Arc::clone(&cuf);
                let best = Arc::clone(&best);
                Box::new(move || {
                    let (mut winners, mut retained) = (Vec::new(), Vec::new());
                    for chunk in &open[range] {
                        for &ci in chunk {
                            let c = candidates[ci as usize];
                            let key = stamp(round, ci);
                            let ra = cuf.find(c.s1);
                            let rb = cuf.find(c.s2);
                            // Every fetch_min of this round
                            // happens-before these loads via the pool
                            // rendezvous between the passes.
                            // ordering: Relaxed is enough, see above.
                            if best[ra as usize].load(Ordering::Relaxed) == key
                                || best[rb as usize].load(Ordering::Relaxed) == key
                            {
                                winners.push(ci);
                            } else {
                                retained.push(ci);
                            }
                        }
                    }
                    (winners, retained)
                })
            })
        };
        let mut winners: Vec<u32> = Vec::new();
        let mut retained: Vec<u32> = Vec::new();
        for (w, r) in claimed {
            winners.extend_from_slice(&w);
            retained.extend_from_slice(&r);
        }
        debug_assert!(!winners.is_empty() || retained.is_empty(), "open components must select");
        // Pass 3 (unite): winners form a forest (each component claims
        // its unique minimum, distinct weights), so every unite succeeds
        // regardless of thread interleaving — this is the pass the
        // concurrent union-find exists for.
        let winners = Arc::new(winners);
        let united: Vec<usize> = run_over_ranges(pool, winners.len(), |range| {
            let winners = Arc::clone(&winners);
            let candidates = Arc::clone(&candidates);
            let cuf = Arc::clone(&cuf);
            Box::new(move || {
                let mut done = 0usize;
                for &ci in &winners[range] {
                    let c = candidates[ci as usize];
                    assert!(cuf.unite(c.s1, c.s2), "round winners must form a forest");
                    done += 1;
                }
                done
            })
        });
        debug_assert_eq!(united.iter().sum::<usize>(), winners.len());
        survivors.extend_from_slice(&winners);
        live = Arc::new(retained);
        round += 1;
    }
    survivors.sort_unstable();
    survivors
}

/// Fans `f`-built tasks over near-equal ranges of `0..n` on the pool.
/// Zero tasks for `n == 0` (the pool is never bothered).
fn run_over_ranges<T, F>(pool: &Arc<WorkerPool>, n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Range<usize>) -> Task<T>,
{
    if n == 0 {
        return Vec::new();
    }
    pool.run_tasks(partition_ranges(n, pool.threads()).into_iter().map(f).collect())
}

/// Replays the surviving operations in rank order through a min-tracking
/// serial [`UnionFind`], emitting the exact serial merge stream: level
/// `r` increments per merge, `left`/`right` are the pre-merge cluster
/// ids (set minima) of the two operands, `into` their minimum — the
/// same labels [`ClusterArray::merge`](linkclust_core::ClusterArray::merge)
/// produces in the serial sweep.
fn replay_survivors(
    m: usize,
    candidates: &[Candidate],
    survivors: &[u32],
    entries: &[SimilarityEntry],
) -> (Vec<MergeRecord>, Vec<f64>) {
    let mut uf = UnionFind::new(m);
    let mut merges = Vec::with_capacity(survivors.len());
    let mut scores = Vec::with_capacity(survivors.len());
    for (i, &ci) in survivors.iter().enumerate() {
        let c = candidates[ci as usize];
        let left = uf.min_of(c.s1 as usize);
        let right = uf.min_of(c.s2 as usize);
        let merged = uf.union(c.s1 as usize, c.s2 as usize);
        debug_assert!(merged, "survivors must connect distinct components");
        merges.push(MergeRecord { level: i as u32 + 1, left, right, into: left.min(right) });
        scores.push(entries[c.entry as usize].score);
    }
    (merges, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_core::init::compute_similarities;
    use linkclust_core::sweep::{sweep, EdgeOrder};
    use linkclust_graph::generate::{gnm, WeightMode};

    fn pool(threads: usize) -> Arc<WorkerPool> {
        Arc::new(WorkerPool::new(threads))
    }

    fn engine_output(
        g: &linkclust_graph::WeightedGraph,
        config: SweepConfig,
        threads: usize,
    ) -> (SweepOutput, SweepOutput) {
        let sims = Arc::new(compute_similarities(g).into_sorted());
        let serial = sweep(g, &sims, config);
        let par = ufsweep_with(g, &sims, config, &pool(threads), &Telemetry::disabled());
        (serial, par)
    }

    #[test]
    fn matches_serial_bit_for_bit_small() {
        for seed in 0..6 {
            let g = gnm(24, 70, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
            for threads in [1, 2, 4] {
                let (serial, par) = engine_output(&g, SweepConfig::default(), threads);
                assert_eq!(serial.dendrogram(), par.dendrogram(), "seed {seed} threads {threads}");
                let sb: Vec<u64> = serial.merge_scores().iter().map(|s| s.to_bits()).collect();
                let pb: Vec<u64> = par.merge_scores().iter().map(|s| s.to_bits()).collect();
                assert_eq!(sb, pb, "seed {seed} threads {threads}");
                assert_eq!(serial.slot_of_edge(), par.slot_of_edge());
            }
        }
    }

    #[test]
    fn matches_serial_with_threshold_and_shuffle() {
        let g = gnm(30, 90, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 11);
        let config =
            SweepConfig { edge_order: EdgeOrder::Shuffled { seed: 5 }, min_similarity: Some(0.35) };
        let (serial, par) = engine_output(&g, config, 3);
        assert_eq!(serial.dendrogram(), par.dendrogram());
        assert_eq!(
            serial.merge_scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            par.merge_scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn boruvka_equals_kruskal_on_random_candidates() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let p = pool(4);
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = 40usize;
            let candidates: Vec<Candidate> = (0..120)
                .map(|i| Candidate {
                    s1: rng.gen_range(0..m as u32),
                    s2: rng.gen_range(0..m as u32),
                    entry: i,
                })
                .collect();
            assert_eq!(
                boruvka_filter(m, &candidates, &p),
                kruskal_filter(m, &candidates),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let p = pool(2);
        assert!(boruvka_filter(0, &[], &p).is_empty());
        assert!(kruskal_filter(0, &[]).is_empty());
        let g = gnm(4, 2, WeightMode::Unit, 0);
        let sims = Arc::new(compute_similarities(&g).into_sorted());
        let out = ufsweep_with(&g, &sims, SweepConfig::default(), &p, &Telemetry::disabled());
        let serial = sweep(&g, &sims, SweepConfig::default());
        assert_eq!(serial.dendrogram(), out.dendrogram());
    }

    #[test]
    fn stamp_orders_rounds_before_ranks() {
        // Later rounds produce strictly smaller keys than earlier ones...
        assert!(stamp(2, u32::MAX) < stamp(1, 0));
        // ...and within a round, smaller candidate rank wins.
        assert!(stamp(1, 3) < stamp(1, 4));
        // Every key beats the empty sentinel.
        assert!(stamp(1, u32::MAX) < NO_CANDIDATE);
    }
}
