//! Property tests for the structural validators of
//! `linkclust_core::invariants`: the dendrograms every pipeline produces
//! — serial and `threads(n)`, fine- and coarse-grained — must validate
//! over random `G(n, m)` graphs, and hand-built violations must be
//! rejected.

use linkclust_core::coarse::CoarseConfig;
use linkclust_core::dendrogram::MergeRecord;
use linkclust_core::invariants::{
    validate_cluster_array, validate_dendrogram, validate_level_points,
};
use linkclust_core::{ClusterArray, Dendrogram};
use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_parallel::facade::LinkClustering;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serial_sweep_dendrograms_validate((n, extra, seed) in (6usize..40, 0usize..60, 0u64..1000)) {
        let m = (n - 1) + extra.min(n * (n - 1) / 2 - (n - 1));
        let g = gnm(n, m, WeightMode::Unit, seed);
        let result = LinkClustering::new().run(&g).expect("serial run");
        prop_assert_eq!(validate_dendrogram(result.dendrogram()), Ok(()));
    }

    #[test]
    fn threaded_dendrograms_validate((n, seed, threads) in (8usize..36, 0u64..1000, 2usize..5)) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, WeightMode::Unit, seed);
        let result = LinkClustering::new().threads(threads).run(&g).expect("threaded run");
        prop_assert_eq!(validate_dendrogram(result.dendrogram()), Ok(()));
    }

    #[test]
    fn coarse_threaded_runs_validate((n, seed, threads) in (8usize..32, 0u64..500, 2usize..5)) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, WeightMode::Unit, seed);
        let result = LinkClustering::new()
            .threads(threads)
            .run_coarse(&g, CoarseConfig::default())
            .expect("coarse run");
        prop_assert_eq!(validate_dendrogram(result.output().dendrogram()), Ok(()));
        prop_assert_eq!(validate_level_points(result.levels()), Ok(()));
    }

    #[test]
    fn random_merge_sequences_keep_cluster_arrays_valid(
        (n, ops, seed) in (2usize..50, 1usize..80, 0u64..1000)
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c = ClusterArray::new(n);
        for _ in 0..ops {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            let _ = c.merge(i, j);
        }
        prop_assert_eq!(validate_cluster_array(&c), Ok(()));
    }
}

/// Merging a dead cluster (non-monotone liveness) is rejected.
#[test]
fn hand_built_orphan_merge_is_rejected() {
    let d = Dendrogram::from_merges(
        4,
        vec![
            MergeRecord { level: 1, left: 0, right: 1, into: 0 },
            // Cluster 1 died in the first merge.
            MergeRecord { level: 2, left: 1, right: 2, into: 1 },
        ],
    );
    let err = validate_dendrogram(&d).expect_err("orphaned operand");
    assert!(err.detail.contains("no longer live"), "{err}");
}

/// `Dendrogram::from_merges` itself rejects non-monotone heights, so a
/// violation of that invariant can only be observed through the
/// constructor's panic.
#[test]
#[should_panic(expected = "non-decreasing")]
fn non_monotone_height_is_rejected_at_construction() {
    let _ = Dendrogram::from_merges(
        4,
        vec![
            MergeRecord { level: 5, left: 0, right: 1, into: 0 },
            MergeRecord { level: 2, left: 2, right: 3, into: 2 },
        ],
    );
}

/// An ascending parent pointer can only be introduced through
/// `from_parents`, which panics — the validator's equivalent check is
/// exercised in the `invariants` module tests.
#[test]
#[should_panic(expected = "descending-chain")]
fn ascending_parent_is_rejected_at_construction() {
    let _ = ClusterArray::from_parents(vec![1, 1]);
}
