//! Property tests for `balanced_partition_by_weight`: the ranges must
//! tile the index space exactly, never exceed the requested part count,
//! and stay balanced — the boundary targets are computed with exact
//! integer arithmetic, so balance must not drift with input length.

use linkclust_parallel::pool::balanced_partition_by_weight;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_index_covered_exactly_once(
        (weights, parts) in (vec(0u64..1_000_000, 0..200), 1usize..12)
    ) {
        let ranges = balanced_partition_by_weight(&weights, parts);
        prop_assert!(ranges.len() <= parts, "{} ranges for {parts} parts", ranges.len());
        let mut covered = vec![0u32; weights.len()];
        for r in &ranges {
            prop_assert!(r.start < r.end, "empty range {r:?}");
            prop_assert!(r.end <= weights.len(), "range {r:?} beyond {}", weights.len());
            for slot in covered[r.clone()].iter_mut() {
                *slot += 1;
            }
        }
        prop_assert!(
            covered.iter().all(|&c| c == 1),
            "coverage {covered:?} for ranges {ranges:?}"
        );
        // Contiguity in order: each range starts where the previous ended.
        let mut expected_start = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, expected_start);
            expected_start = r.end;
        }
        prop_assert_eq!(expected_start, weights.len());
    }

    #[test]
    fn uniform_weights_split_near_evenly(
        (n, parts, w) in (1usize..400, 1usize..12, 1u64..1000)
    ) {
        let weights = vec![w; n];
        let ranges = balanced_partition_by_weight(&weights, parts);
        prop_assert_eq!(ranges.len(), parts.min(n));
        let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
        let max = *sizes.iter().max().expect("at least one range");
        let min = *sizes.iter().min().expect("at least one range");
        // Exact integer boundary targets put every cut at ⌈n·k/parts⌉,
        // so uniform-weight range sizes can differ by at most one.
        prop_assert!(max - min <= 1, "sizes {sizes:?} for n = {n}, parts = {parts}");
    }

    #[test]
    fn range_count_and_total_weight_are_preserved(
        (weights, parts) in (vec(0u64..100, 1..150), 1usize..8)
    ) {
        let total: u64 = weights.iter().sum();
        let ranges = balanced_partition_by_weight(&weights, parts);
        let covered: u64 = ranges.iter().map(|r| weights[r.clone()].iter().sum::<u64>()).sum();
        prop_assert_eq!(covered, total);
        prop_assert_eq!(ranges.len(), parts.min(weights.len()));
    }
}

/// The regression the integer-exact targets fix: with float
/// accumulation, `target += ideal` drifts by an ulp per boundary, which
/// on adversarial inputs moves a cut by one item. The exact-arithmetic
/// predicate is reproducible against an independent computation of the
/// boundary targets.
#[test]
fn boundaries_match_exact_rational_targets_for_uniform_weights() {
    for n in 1..300usize {
        for parts in 1..8usize {
            let weights = vec![7u64; n];
            let ranges = balanced_partition_by_weight(&weights, parts);
            for (k, r) in ranges.iter().enumerate().take(ranges.len() - 1) {
                // The k-th cut (1-based) is the smallest i with
                // i·parts ≥ n·(k+1): exactly ⌈n·(k+1)/parts⌉.
                let expected_end = (n * (k + 1)).div_ceil(parts.min(n));
                assert_eq!(
                    r.end, expected_end,
                    "cut {k} for n = {n}, parts = {parts}: ranges {ranges:?}"
                );
            }
        }
    }
}
