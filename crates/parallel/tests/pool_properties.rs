//! Property tests for the persistent worker pool: every pooled phase
//! must match its serial counterpart for any thread count — including
//! more threads than CPUs — the pool must survive task panics with the
//! original payload re-raised, and nested submissions (the sort
//! re-entering the pool from inside a pooled task, as happens when one
//! pool serves a whole clustering run) must not deadlock.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use linkclust_core::coarse::{coarse_sweep, CoarseConfig};
use linkclust_core::init::compute_similarities;
use linkclust_core::reference::canonical_labels;
use linkclust_graph::generate::{gnm, WeightMode};
use linkclust_parallel::compute_similarities_parallel;
use linkclust_parallel::pool::{Task, WorkerPool};
use linkclust_parallel::sort::{parallel_into_sorted, parallel_sort_pooled};
use linkclust_parallel::{parallel_coarse_sweep, parallel_coarse_sweep_shared};
use proptest::prelude::*;

/// Thread counts to exercise: 1 (inline), a few small ones, and 8 —
/// which exceeds the core count on small CI machines, covering the
/// oversubscribed case the pool must handle without deadlock.
const THREADS: [usize; 5] = [1, 2, 3, 5, 8];

fn canon(labels: &[u32]) -> Vec<usize> {
    canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pooled_init_matches_serial(seed in 0u64..1000, n in 20usize..60) {
        let m = (n * 3).min(n * (n - 1) / 2);
        let g = gnm(n, m, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        let serial = compute_similarities(&g);
        for threads in THREADS {
            let par = compute_similarities_parallel(&g, threads);
            prop_assert_eq!(par.len(), serial.len(), "threads {}", threads);
            let mut se: Vec<_> = serial.entries().to_vec();
            let mut pe: Vec<_> = par.entries().to_vec();
            se.sort_by_key(|e| e.pair);
            pe.sort_by_key(|e| e.pair);
            for (a, b) in se.iter().zip(&pe) {
                prop_assert_eq!(a.pair, b.pair);
                prop_assert_eq!(&a.common_neighbors, &b.common_neighbors, "pair {}", a.pair);
                // The sharded fold replays the serial accumulation order,
                // so scores are bit-identical, not merely within 1e-12.
                prop_assert_eq!(
                    a.score.to_bits(), b.score.to_bits(),
                    "pair {} threads {}", a.pair, threads
                );
            }
        }
    }

    #[test]
    fn pooled_sort_matches_serial(seed in 0u64..1000, n in 20usize..60) {
        let g = gnm(n, n * 3, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        let serial = compute_similarities(&g).into_sorted();
        for threads in THREADS {
            let pooled = parallel_into_sorted(compute_similarities(&g), threads);
            prop_assert!(pooled.is_sorted());
            prop_assert_eq!(serial.entries(), pooled.entries(), "threads {}", threads);
        }
    }

    #[test]
    fn pooled_coarse_sweep_matches_serial(seed in 0u64..1000, phi in 1usize..8) {
        let g = gnm(45, 190, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        let sims = Arc::new(compute_similarities(&g).into_sorted());
        let cfg = CoarseConfig { phi, initial_chunk: 8, ..Default::default() };
        let serial = coarse_sweep(&g, &sims, cfg);
        for threads in THREADS {
            let par = parallel_coarse_sweep_shared(&g, &sims, cfg, threads);
            let sl: Vec<_> = serial.levels().iter().map(|l| (l.level, l.clusters)).collect();
            let pl: Vec<_> = par.levels().iter().map(|l| (l.level, l.clusters)).collect();
            prop_assert_eq!(sl, pl, "threads {}", threads);
            prop_assert_eq!(
                canon(&serial.output().edge_assignments()),
                canon(&par.output().edge_assignments()),
                "threads {}", threads
            );
        }
    }
}

/// A pooled task that itself submits a sort to the same pool — the
/// shape a clustering run produces when one pool serves every phase.
/// The nested call must drain the queue inline rather than deadlock,
/// even with a single worker (threads == 2).
#[test]
fn sort_nested_inside_a_pool_task_does_not_deadlock() {
    for threads in [2usize, 4, 8] {
        let pool = Arc::new(WorkerPool::new(threads));
        let tasks: Vec<Task<Vec<u64>>> = (0..threads + 2)
            .map(|t| {
                let pool = Arc::clone(&pool);
                Box::new(move || {
                    let items: Vec<u64> = (0..500).map(|i| (i * 7919 + t as u64) % 1009).collect();
                    parallel_sort_pooled(&pool, items, |a, b| a.cmp(b))
                }) as Task<Vec<u64>>
            })
            .collect();
        let results = pool.run_tasks(tasks);
        assert_eq!(results.len(), threads + 2, "threads {threads}");
        for sorted in results {
            assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "threads {threads}");
        }
    }
}

/// The nested shape the facade actually runs: a coarse sweep whose
/// chunk processor shares the pool that also ran init and sort.
#[test]
fn facade_reuses_one_pool_across_phases_and_matches_serial() {
    let g = gnm(50, 220, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 11);
    let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
    let serial = linkclust_parallel::LinkClustering::new().run_coarse(&g, cfg).unwrap();
    for threads in THREADS {
        let par =
            linkclust_parallel::LinkClustering::new().threads(threads).run_coarse(&g, cfg).unwrap();
        let sl: Vec<_> = serial.levels().iter().map(|l| (l.level, l.clusters)).collect();
        let pl: Vec<_> = par.levels().iter().map(|l| (l.level, l.clusters)).collect();
        assert_eq!(sl, pl, "threads {threads}");
    }
}

/// A worker panic must re-raise on the submitting thread with the
/// original payload, and the pool must stay fully usable afterwards.
#[test]
fn worker_panic_payload_survives_and_pool_stays_usable() {
    let pool = WorkerPool::new(4);
    for round in 0..3 {
        let tasks: Vec<Task<u64>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("boom-{i}");
                    }
                    i * 10
                }) as Task<u64>
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run_tasks(tasks)))
            .expect_err("panicking task must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic! with format args yields a String payload");
        assert_eq!(msg, "boom-5", "round {round}");
        // The same pool keeps delivering correct results.
        let ok = pool.run_tasks((0..6u64).map(|i| Box::new(move || i + 1) as Task<u64>).collect());
        assert_eq!(ok, vec![1, 2, 3, 4, 5, 6], "round {round}");
    }
}

/// Cross-thread `record_phase_nanos` (`Phase::PoolQueueWait`) from ≥4
/// pool workers must never lose a count: the mutex-aggregated report
/// must equal an independent per-thread tally, call for call and
/// nanosecond for nanosecond. A barrier forces every batch to be
/// executed by four distinct threads concurrently.
#[test]
fn concurrent_queue_wait_records_are_never_lost() {
    use std::collections::HashMap;
    use std::sync::{Barrier, Mutex};
    use std::thread::ThreadId;

    use linkclust_core::telemetry::{Counter, Gauge, Phase, Recorder, RunRecorder, Telemetry};

    /// Forwards everything to a [`RunRecorder`] while independently
    /// tallying queue-wait spans per recording thread.
    #[derive(Default)]
    struct Tally {
        inner: RunRecorder,
        queue_waits: Mutex<HashMap<ThreadId, (u64, u64)>>,
    }

    impl Recorder for Tally {
        fn record_phase(&self, phase: Phase, nanos: u64) {
            if phase == Phase::PoolQueueWait {
                let mut map = self.queue_waits.lock().expect("tally mutex");
                let slot = map.entry(std::thread::current().id()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += nanos;
            }
            self.inner.record_phase(phase, nanos);
        }
        fn add(&self, counter: Counter, value: u64) {
            self.inner.add(counter, value);
        }
        fn observe(&self, gauge: Gauge, value: f64) {
            self.inner.observe(gauge, value);
        }
        fn thread_items(&self, thread: usize, items: u64) {
            self.inner.thread_items(thread, items);
        }
    }

    const WORKERS: usize = 4;
    const BATCHES: usize = 16;
    let tally = Arc::new(Tally::default());
    let pool = WorkerPool::new(WORKERS)
        .with_telemetry(Telemetry::new(Arc::clone(&tally) as Arc<dyn Recorder>));
    for _ in 0..BATCHES {
        let barrier = Arc::new(Barrier::new(WORKERS));
        let tasks: Vec<Task<()>> = (0..WORKERS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                Box::new(move || {
                    barrier.wait();
                }) as Task<()>
            })
            .collect();
        let _ = pool.run_tasks(tasks);
    }

    let report = tally.inner.report();
    let expected = (WORKERS * BATCHES) as u64;
    assert_eq!(report.phase_calls(Phase::PoolQueueWait), expected, "one span per queued task");
    let map = tally.queue_waits.lock().expect("tally mutex");
    assert!(map.len() >= WORKERS, "queue waits recorded by only {} threads", map.len());
    let (calls, nanos) = map.values().fold((0u64, 0u64), |(c, n), &(dc, dn)| (c + dc, n + dn));
    assert_eq!(calls, expected);
    assert_eq!(report.phase_nanos(Phase::PoolQueueWait), nanos, "aggregate == per-thread sums");
    assert_eq!(report.phase_histogram(Phase::PoolQueueWait).count(), expected);
}

/// Standalone `parallel_coarse_sweep` (buffered entry path, lazily
/// created pool) must agree with the `Arc`-shared zero-copy path.
#[test]
fn buffered_and_shared_entry_paths_agree() {
    let g = gnm(40, 170, WeightMode::Uniform { lo: 0.3, hi: 1.6 }, 3);
    let sims = Arc::new(compute_similarities(&g).into_sorted());
    let cfg = CoarseConfig { phi: 4, initial_chunk: 8, ..Default::default() };
    for threads in [2usize, 4] {
        let buffered = parallel_coarse_sweep(&g, &sims, cfg, threads);
        let shared = parallel_coarse_sweep_shared(&g, &sims, cfg, threads);
        assert_eq!(buffered.levels(), shared.levels(), "threads {threads}");
    }
}
