//! The LRU answer cache.
//!
//! Queries against a frozen [`DendrogramIndex`](crate::index) are pure
//! functions of (query kind, resolved dendrogram level, auxiliary
//! argument), so rendered responses are cached under exactly that key.
//! Distinct thresholds that resolve to the same level share an entry —
//! the level *is* the bucket. The server clears the cache on every
//! index swap, which keeps a stored generation tag inside the cached
//! payload valid for the entry's whole lifetime.

use std::collections::HashMap;

/// The cache key: query kind discriminant, resolved cut level, and an
/// auxiliary argument (edge/vertex id, or `k` for top-k queries).
pub type CacheKey = (u8, u32, u64);

/// A bounded LRU map from query keys to rendered responses.
///
/// Recency is tracked with a monotone tick; eviction scans for the
/// minimum tick, which is O(capacity) but runs only when the cache is
/// full — with the default capacity of a few hundred entries this is
/// noise next to rendering a response.
#[derive(Debug)]
pub struct AnswerCache {
    entries: HashMap<CacheKey, (u64, String)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl AnswerCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        AnswerCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit and counting the
    /// outcome either way.
    pub fn get(&mut self, key: &CacheKey) -> Option<String> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((tick, payload)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a rendered response, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn put(&mut self, key: CacheKey, payload: String) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, (tick, _))| *tick).map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, payload));
    }

    /// Drops every entry (called on index swap); hit/miss counters are
    /// preserved — they describe the whole serving session.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses) counts.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_and_counters() {
        let mut c = AnswerCache::new(4);
        let key = (1u8, 5u32, 7u64);
        assert!(c.get(&key).is_none());
        c.put(key, "answer".to_string());
        assert_eq!(c.get(&key).as_deref(), Some("answer"));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = AnswerCache::new(2);
        c.put((0, 0, 0), "a".into());
        c.put((0, 0, 1), "b".into());
        assert!(c.get(&(0, 0, 0)).is_some()); // refresh "a"
        c.put((0, 0, 2), "c".into()); // evicts "b"
        assert!(c.get(&(0, 0, 0)).is_some());
        assert!(c.get(&(0, 0, 1)).is_none());
        assert!(c.get(&(0, 0, 2)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = AnswerCache::new(2);
        c.put((0, 0, 0), "a".into());
        c.put((0, 0, 1), "b".into());
        c.put((0, 0, 0), "a2".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&(0, 0, 0)).as_deref(), Some("a2"));
        assert!(c.get(&(0, 0, 1)).is_some());
    }

    #[test]
    fn clear_preserves_counters() {
        let mut c = AnswerCache::new(2);
        c.put((0, 0, 0), "a".into());
        let _ = c.get(&(0, 0, 0));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&(0, 0, 0)).is_none());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c = AnswerCache::new(0);
        c.put((0, 0, 0), "a".into());
        assert_eq!(c.len(), 1);
        c.put((0, 0, 1), "b".into());
        assert_eq!(c.len(), 1);
        assert!(c.get(&(0, 0, 1)).is_some());
    }
}
