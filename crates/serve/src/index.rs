//! The serialized dendrogram index.
//!
//! A [`DendrogramIndex`] freezes one clustering run — the merge forest,
//! per-merge similarities, the edge→slot permutation, edge endpoints,
//! and the precomputed partition-density profile — into a queryable,
//! versioned artifact. Every query it answers is **bit-identical** to
//! evaluating the live [`Dendrogram`]/[`SweepOutput`] pair it was built
//! from:
//!
//! * the threshold→level rule is the exact
//!   [`SweepOutput::edge_assignments_at_similarity`] partition-point,
//! * cut labels come from a binary-lifting walk over the merge forest
//!   whose node labels are the paper's min-slot cluster ids (the same
//!   labelling union-find replay produces),
//! * the density profile and best cut are stored from
//!   [`Dendrogram::density_profile`] at build time, and
//!   [`best_cut`](DendrogramIndex::best_cut) replays the same
//!   strict-`>` fold.
//!
//! # On-disk layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"LNKCLSDX"
//!      8     4  format version (currently 1)
//!     12     4  flags (reserved, must be 0)
//!     16     8  vertex count n (u64)
//!     24     8  edge count m (u64)
//!     32     8  merge count k (u64)
//!     40     8  profile point count L (u64)
//!     48  12*k  merge records: u32 level, u32 left, u32 right
//!      +   8*k  merge similarities: f64 bit patterns
//!      +   4*m  slot of edge: u32 (a permutation of 0..m)
//!      +   8*m  edge endpoints: u32 source, u32 target
//!      +  16*L  profile points: u32 level, u32 cluster count, f64 density
//! ```
//!
//! Files are untrusted input: the loader validates *everything* — magic,
//! version, counts, merge liveness (each merge must reference two live
//! min-labelled clusters, which is what makes a loaded index safe for
//! [`export`](linkclust_core::export)-style traversals), score
//! monotonicity, the slot permutation, endpoint ranges, and the profile
//! shape — and reports failures as typed [`IndexError`] values, never a
//! panic.

use std::io::{Read, Write};

use linkclust_core::dendrogram::{Dendrogram, DensityCut, MergeRecord};
use linkclust_core::sweep::SweepOutput;
use linkclust_core::unionfind::UnionFind;
use linkclust_graph::{EdgeId, GraphView};

/// The 8-byte magic at offset 0.
pub const MAGIC: [u8; 8] = *b"LNKCLSDX";

/// The current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Header length in bytes.
const HEADER_BYTES: usize = 48;

/// Bytes per merge record (level, left, right).
const MERGE_BYTES: usize = 12;

/// Bytes per profile point (level, cluster count, density).
const PROFILE_BYTES: usize = 16;

/// Records per streaming chunk (~1 MB at the largest record size).
const CHUNK_RECORDS: usize = 64 * 1024;

/// Errors raised while reading or building a dendrogram index.
#[derive(Debug)]
#[non_exhaustive]
pub enum IndexError {
    /// An I/O failure from the underlying reader or writer.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// The reserved flags field is non-zero.
    UnsupportedFlags(u32),
    /// The header declares an index too large for `u32` ids.
    TooLarge {
        /// Declared vertex count.
        vertices: u64,
        /// Declared edge count.
        edges: u64,
    },
    /// The stream ended before a declared section was fully read.
    Truncated {
        /// The section that came up short.
        section: &'static str,
        /// Records the header declared for it.
        declared: u64,
        /// Records actually read.
        read: u64,
    },
    /// Bytes remain after the declared sections.
    TrailingData,
    /// The sweep output carries no per-merge similarities (produced by a
    /// coarse sweep), so threshold queries would be unanswerable.
    NoMergeScores,
    /// A record is structurally invalid.
    Corrupt {
        /// The section containing the bad record.
        section: &'static str,
        /// 0-based record index within the section.
        index: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "i/o error while reading dendrogram index: {e}"),
            IndexError::BadMagic => write!(f, "not a dendrogram index file (bad magic)"),
            IndexError::UnsupportedVersion(v) => {
                write!(f, "unsupported index version {v} (reader supports {FORMAT_VERSION})")
            }
            IndexError::UnsupportedFlags(flags) => {
                write!(f, "reserved flags field is non-zero: {flags:#x}")
            }
            IndexError::TooLarge { vertices, edges } => {
                write!(f, "index too large for u32 ids: {vertices} vertices, {edges} edges")
            }
            IndexError::Truncated { section, declared, read } => {
                write!(f, "file truncated in section {section}: declared {declared}, read {read}")
            }
            IndexError::TrailingData => {
                write!(f, "trailing bytes after the declared index sections")
            }
            IndexError::NoMergeScores => {
                write!(
                    f,
                    "sweep output carries no per-merge similarities (coarse sweep) — \
                     an index cannot answer threshold queries from it"
                )
            }
            IndexError::Corrupt { section, index, reason } => {
                write!(f, "corrupt {section} record {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}

/// One community in a [`DendrogramIndex::top_communities`] answer:
/// the summary fields of
/// [`Community`](linkclust_core::communities::Community), in the same
/// (edge count descending, label ascending) order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TopCommunity {
    /// The cluster label (the community's smallest member slot).
    pub label: u32,
    /// Number of member edges (`m_c`).
    pub edge_count: u64,
    /// Number of induced vertices (`n_c`).
    pub vertex_count: u64,
}

/// A frozen, queryable clustering run. See the [module docs](self) for
/// the equivalence contract and the on-disk layout.
#[derive(Clone, PartialEq, Debug)]
pub struct DendrogramIndex {
    vertex_count: usize,
    edge_count: usize,
    merges: Vec<MergeRecord>,
    merge_scores: Vec<f64>,
    slot_of_edge: Vec<u32>,
    endpoints: Vec<(u32, u32)>,
    profile: Vec<DensityCut>,
    // Derived at load time, never serialized.
    /// Binary-lifting table, `lift[j * node_count + v]` = v's 2^j-th
    /// forest ancestor (self-loop at roots). Nodes `0..m` are leaf
    /// slots; node `m + i` is merge `i`.
    lift: Vec<u32>,
    /// Number of lifting rows (`lift.len() / node_count`).
    lift_rows: usize,
    /// Dendrogram level at which each forest node comes into existence
    /// (0 for leaves, the merge's level otherwise).
    node_level: Vec<u32>,
    /// The min-slot cluster label each forest node represents.
    node_label: Vec<u32>,
    /// CSR offsets into [`Self::incident_edges`], one slice per vertex.
    incident_start: Vec<u32>,
    /// Edge ids incident to each vertex, grouped by vertex.
    incident_edges: Vec<u32>,
}

impl DendrogramIndex {
    /// Builds an index for `output` over `g`, precomputing the density
    /// profile with [`Dendrogram::density_profile`].
    ///
    /// # Errors
    ///
    /// [`IndexError::NoMergeScores`] if the output tracks no per-merge
    /// similarities (coarse sweeps); [`IndexError::Corrupt`] if the
    /// output and graph disagree (never for outputs the clustering
    /// pipeline produced for `g`).
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have exactly the output's edge count
    /// (the [`Dendrogram::density_profile`] contract).
    pub fn build<G: GraphView + ?Sized>(g: &G, output: &SweepOutput) -> Result<Self, IndexError> {
        let d = output.dendrogram();
        if output.merge_scores().len() as u64 != d.merge_count() {
            return Err(IndexError::NoMergeScores);
        }
        let endpoints = (0..g.edge_count())
            .map(|e| {
                let (s, t) = g.edge_endpoints(EdgeId::new(e));
                (u32::from(s), u32::from(t))
            })
            .collect();
        Self::from_parts(
            g.vertex_count(),
            d.edge_count(),
            d.merges().to_vec(),
            output.merge_scores().to_vec(),
            output.slot_of_edge().to_vec(),
            endpoints,
            d.density_profile(g),
        )
    }

    /// Assembles and fully validates an index from its stored parts,
    /// then derives the query structures. This is the single validation
    /// chokepoint: [`build`](Self::build) and [`read`](Self::read) both
    /// funnel through it.
    ///
    /// # Errors
    ///
    /// [`IndexError::Corrupt`] naming the offending section and record
    /// for any structural violation; see the [module docs](self) for
    /// the full rule list.
    ///
    /// # Panics
    ///
    /// Never panics in practice: edge ids fit `u32` whenever the slot
    /// permutation validates (slots are themselves `u32`).
    #[allow(clippy::too_many_lines)] // one linear validation pass per section
    pub fn from_parts(
        vertex_count: usize,
        edge_count: usize,
        merges: Vec<MergeRecord>,
        merge_scores: Vec<f64>,
        slot_of_edge: Vec<u32>,
        endpoints: Vec<(u32, u32)>,
        profile: Vec<DensityCut>,
    ) -> Result<Self, IndexError> {
        let m = edge_count;
        let corrupt = |section: &'static str, index: usize, reason: String| {
            Err(IndexError::Corrupt { section, index: index as u64, reason })
        };

        // --- merges: levels non-decreasing, operands live min-labels ---
        if !merges.is_empty() && merges.len() >= m {
            return corrupt(
                "header",
                0,
                format!("{} merges cannot arise from {m} edges", merges.len()),
            );
        }
        let mut uf = UnionFind::new(m);
        let mut prev_level = 0u32;
        for (i, rec) in merges.iter().enumerate() {
            if rec.level < prev_level {
                return corrupt(
                    "merges",
                    i,
                    format!("level {} decreases below {prev_level}", rec.level),
                );
            }
            prev_level = rec.level;
            if rec.left as usize >= m || rec.right as usize >= m {
                return corrupt(
                    "merges",
                    i,
                    format!("operand beyond the {m} slots: ({}, {})", rec.left, rec.right),
                );
            }
            if rec.into != rec.left.min(rec.right) {
                return corrupt(
                    "merges",
                    i,
                    format!("surviving id {} is not min({}, {})", rec.into, rec.left, rec.right),
                );
            }
            // Liveness: both operands must currently *be* the min label
            // of their cluster — a dead operand is the doubly-merged
            // defect that export traversals choke on.
            if uf.min_of(rec.left as usize) != rec.left {
                return corrupt(
                    "merges",
                    i,
                    format!("left operand {} was already consumed by an earlier merge", rec.left),
                );
            }
            if uf.min_of(rec.right as usize) != rec.right {
                return corrupt(
                    "merges",
                    i,
                    format!("right operand {} was already consumed by an earlier merge", rec.right),
                );
            }
            if rec.left == rec.right {
                return corrupt("merges", i, "operands are the same cluster".to_string());
            }
            uf.union(rec.left as usize, rec.right as usize);
        }

        // --- scores: aligned, finite, non-increasing -------------------
        if merge_scores.len() != merges.len() {
            return corrupt(
                "scores",
                0,
                format!("{} scores for {} merges", merge_scores.len(), merges.len()),
            );
        }
        let mut prev_score = f64::INFINITY;
        for (i, &s) in merge_scores.iter().enumerate() {
            if !s.is_finite() {
                return corrupt("scores", i, format!("non-finite similarity {s}"));
            }
            if s > prev_score {
                return corrupt(
                    "scores",
                    i,
                    format!("similarity {s} increases above {prev_score} (list must be sorted)"),
                );
            }
            prev_score = s;
        }

        // --- slot permutation ------------------------------------------
        if slot_of_edge.len() != m {
            return corrupt(
                "slots",
                0,
                format!("{} slot entries for {m} edges", slot_of_edge.len()),
            );
        }
        let mut seen = vec![false; m];
        for (e, &s) in slot_of_edge.iter().enumerate() {
            if s as usize >= m {
                return corrupt("slots", e, format!("slot {s} beyond the {m} slots"));
            }
            if std::mem::replace(&mut seen[s as usize], true) {
                return corrupt("slots", e, format!("slot {s} assigned twice"));
            }
        }

        // --- endpoints -------------------------------------------------
        if endpoints.len() != m {
            return corrupt(
                "endpoints",
                0,
                format!("{} endpoint records for {m} edges", endpoints.len()),
            );
        }
        for (e, &(s, t)) in endpoints.iter().enumerate() {
            if s as usize >= vertex_count || t as usize >= vertex_count {
                return corrupt(
                    "endpoints",
                    e,
                    format!("endpoint beyond the {vertex_count} vertices: ({s}, {t})"),
                );
            }
            if s == t {
                return corrupt("endpoints", e, format!("self-loop at vertex {s}"));
            }
        }

        // --- profile: one point per distinct merge level ---------------
        let mut expected: Vec<(u32, usize)> = Vec::new();
        {
            let mut i = 0;
            while i < merges.len() {
                let level = merges[i].level;
                while i < merges.len() && merges[i].level == level {
                    i += 1;
                }
                expected.push((level, m - i));
            }
        }
        if profile.len() != expected.len() {
            return corrupt(
                "profile",
                0,
                format!("{} points for {} distinct merge levels", profile.len(), expected.len()),
            );
        }
        for (j, (point, &(level, clusters))) in profile.iter().zip(&expected).enumerate() {
            if point.level != level {
                return corrupt(
                    "profile",
                    j,
                    format!("level {} does not match merge level {level}", point.level),
                );
            }
            if point.cluster_count != clusters {
                return corrupt(
                    "profile",
                    j,
                    format!(
                        "cluster count {} does not match the {clusters} clusters the merges leave",
                        point.cluster_count
                    ),
                );
            }
            if !point.density.is_finite() {
                return corrupt("profile", j, format!("non-finite density {}", point.density));
            }
        }

        // --- derive the query structures -------------------------------
        let node_count = m + merges.len();
        let mut parent: Vec<u32> = (0..node_count as u32).collect();
        let mut node_level = vec![0u32; node_count];
        let mut node_label: Vec<u32> = (0..m as u32).collect();
        node_label.resize(node_count, 0);
        // Current forest node of each live cluster, keyed by its label.
        let mut node_of: Vec<u32> = (0..m as u32).collect();
        for (i, rec) in merges.iter().enumerate() {
            let node = (m + i) as u32;
            parent[node_of[rec.left as usize] as usize] = node;
            parent[node_of[rec.right as usize] as usize] = node;
            node_level[node as usize] = rec.level;
            node_label[node as usize] = rec.into;
            node_of[rec.into as usize] = node;
        }
        let lift_rows = usize::BITS as usize - node_count.leading_zeros() as usize;
        let lift_rows = lift_rows.max(1);
        let mut lift = vec![0u32; lift_rows * node_count];
        lift[..node_count].copy_from_slice(&parent);
        for j in 1..lift_rows {
            for v in 0..node_count {
                let mid = lift[(j - 1) * node_count + v] as usize;
                lift[j * node_count + v] = lift[(j - 1) * node_count + mid];
            }
        }

        let mut incident_start = vec![0u32; vertex_count + 1];
        for &(s, t) in &endpoints {
            incident_start[s as usize + 1] += 1;
            incident_start[t as usize + 1] += 1;
        }
        for v in 0..vertex_count {
            incident_start[v + 1] += incident_start[v];
        }
        let mut cursor = incident_start.clone();
        let mut incident_edges = vec![0u32; 2 * m];
        for (e, &(s, t)) in endpoints.iter().enumerate() {
            let e32 = u32::try_from(e).expect("edge count fits u32 by the header check");
            incident_edges[cursor[s as usize] as usize] = e32;
            cursor[s as usize] += 1;
            incident_edges[cursor[t as usize] as usize] = e32;
            cursor[t as usize] += 1;
        }

        Ok(DendrogramIndex {
            vertex_count,
            edge_count: m,
            merges,
            merge_scores,
            slot_of_edge,
            endpoints,
            profile,
            lift,
            lift_rows,
            node_level,
            node_label,
            incident_start,
            incident_edges,
        })
    }

    /// Number of vertices in the indexed graph.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges (= dendrogram leaves) in the indexed graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of merge events.
    #[must_use]
    pub fn merge_count(&self) -> u64 {
        self.merges.len() as u64
    }

    /// The precomputed density profile (one point per distinct level).
    #[must_use]
    pub fn profile(&self) -> &[DensityCut] {
        &self.profile
    }

    /// Endpoints `(source, target)` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.edge_count()`.
    #[must_use]
    pub fn endpoints(&self, e: usize) -> (u32, u32) {
        self.endpoints[e]
    }

    /// Number of clusters left after cutting at `level`: every merge at
    /// a level ≤ the cut consumes one cluster.
    #[must_use]
    pub fn cluster_count_at_level(&self, level: u32) -> usize {
        self.edge_count - self.merges.partition_point(|r| r.level <= level)
    }

    /// The dendrogram level a similarity threshold resolves to —
    /// the exact [`SweepOutput::edge_assignments_at_similarity`] rule:
    /// keep every merge with similarity ≥ `theta`.
    #[must_use]
    pub fn level_for_threshold(&self, theta: f64) -> u32 {
        let keep = self.merge_scores.partition_point(|&s| s >= theta);
        if keep == 0 {
            0
        } else {
            self.merges[keep - 1].level
        }
    }

    /// The min-slot cluster label of `slot` after replaying merges up to
    /// and including `level`: a max-jump binary-lifting walk (parent
    /// chains have non-decreasing levels, so the greedy high-to-low jump
    /// lands on the highest qualifying ancestor).
    fn label_at_level(&self, slot: u32, level: u32) -> u32 {
        let n = self.node_level.len();
        let mut v = slot as usize;
        for j in (0..self.lift_rows).rev() {
            let a = self.lift[j * n + v] as usize;
            if a != v && self.node_level[a] <= level {
                v = a;
            }
        }
        self.node_label[v]
    }

    /// Cluster label per **edge id** after cutting at `level` —
    /// bit-identical to [`SweepOutput::edge_assignments_at_level`].
    #[must_use]
    pub fn edge_labels_at_level(&self, level: u32) -> Vec<u32> {
        self.slot_of_edge.iter().map(|&s| self.label_at_level(s, level)).collect()
    }

    /// Cluster label per edge id after cutting at similarity `theta` —
    /// bit-identical to [`SweepOutput::edge_assignments_at_similarity`].
    #[must_use]
    pub fn edge_labels_at_threshold(&self, theta: f64) -> Vec<u32> {
        self.edge_labels_at_level(self.level_for_threshold(theta))
    }

    /// The community label of edge `e` after cutting at `level`, or
    /// `None` for an out-of-range edge id.
    #[must_use]
    pub fn edge_label_at_level(&self, e: usize, level: u32) -> Option<u32> {
        let slot = *self.slot_of_edge.get(e)?;
        Some(self.label_at_level(slot, level))
    }

    /// The community label of edge `e` at similarity `theta`, or `None`
    /// for an out-of-range edge id.
    #[must_use]
    pub fn membership_of_edge(&self, e: usize, theta: f64) -> Option<u32> {
        self.edge_label_at_level(e, self.level_for_threshold(theta))
    }

    /// The distinct community labels of the edges incident to vertex
    /// `v` after cutting at `level` (ascending), or `None` for an
    /// out-of-range vertex id.
    #[must_use]
    pub fn vertex_labels_at_level(&self, v: usize, level: u32) -> Option<Vec<u32>> {
        if v >= self.vertex_count {
            return None;
        }
        let (lo, hi) = (self.incident_start[v] as usize, self.incident_start[v + 1] as usize);
        let mut labels: Vec<u32> = self.incident_edges[lo..hi]
            .iter()
            .map(|&e| self.label_at_level(self.slot_of_edge[e as usize], level))
            .collect();
        labels.sort_unstable();
        labels.dedup();
        Some(labels)
    }

    /// The distinct community labels of the edges incident to vertex
    /// `v` at similarity `theta` (ascending), or `None` for an
    /// out-of-range vertex id. Vertices in several communities are the
    /// overlap structure link clustering exists to expose.
    #[must_use]
    pub fn membership_of_vertex(&self, v: usize, theta: f64) -> Option<Vec<u32>> {
        self.vertex_labels_at_level(v, self.level_for_threshold(theta))
    }

    /// The `k` largest communities at similarity `theta`, ordered by
    /// decreasing edge count (ties by ascending label) — the
    /// [`LinkCommunities`](linkclust_core::communities::LinkCommunities)
    /// ordering.
    #[must_use]
    pub fn top_communities(&self, theta: f64, k: usize) -> Vec<TopCommunity> {
        self.top_communities_at_level(self.level_for_threshold(theta), k)
    }

    /// The `k` largest communities after cutting at `level`, in the
    /// same ordering as [`top_communities`](Self::top_communities).
    #[must_use]
    pub fn top_communities_at_level(&self, level: u32, k: usize) -> Vec<TopCommunity> {
        let labels = self.edge_labels_at_level(level);
        let mut edges_of: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut verts_of: std::collections::HashMap<u32, std::collections::HashSet<u32>> =
            std::collections::HashMap::new();
        for (e, &label) in labels.iter().enumerate() {
            *edges_of.entry(label).or_default() += 1;
            let (s, t) = self.endpoints[e];
            let set = verts_of.entry(label).or_default();
            set.insert(s);
            set.insert(t);
        }
        let mut out: Vec<TopCommunity> = edges_of
            .into_iter()
            .map(|(label, edge_count)| TopCommunity {
                label,
                edge_count,
                vertex_count: verts_of[&label].len() as u64,
            })
            .collect();
        out.sort_by(|a, b| b.edge_count.cmp(&a.edge_count).then_with(|| a.label.cmp(&b.label)));
        out.truncate(k);
        out
    }

    /// The density-optimal cut — bit-identical to
    /// [`Dendrogram::best_density_cut`]: the strict-`>` fold over the
    /// stored profile from the implicit all-singletons starting point,
    /// `None` for an edgeless graph.
    #[must_use]
    pub fn best_cut(&self) -> Option<DensityCut> {
        if self.edge_count == 0 {
            return None;
        }
        let mut best = DensityCut { level: 0, density: 0.0, cluster_count: self.edge_count };
        for point in &self.profile {
            if point.density > best.density {
                best = *point;
            }
        }
        Some(best)
    }

    /// Reconstructs the live [`Dendrogram`] this index froze.
    #[must_use]
    pub fn to_dendrogram(&self) -> Dendrogram {
        Dendrogram::from_merges(self.edge_count, self.merges.clone())
    }

    /// Writes the index in the versioned binary format.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&0u32.to_le_bytes());
        header[16..24].copy_from_slice(&(self.vertex_count as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(self.edge_count as u64).to_le_bytes());
        header[32..40].copy_from_slice(&(self.merges.len() as u64).to_le_bytes());
        header[40..48].copy_from_slice(&(self.profile.len() as u64).to_le_bytes());
        writer.write_all(&header)?;

        let mut buf: Vec<u8> = Vec::with_capacity(CHUNK_RECORDS * PROFILE_BYTES);
        let flush_if_full = |buf: &mut Vec<u8>, writer: &mut W| -> std::io::Result<()> {
            if buf.len() >= CHUNK_RECORDS * PROFILE_BYTES {
                writer.write_all(buf)?;
                buf.clear();
            }
            Ok(())
        };
        for rec in &self.merges {
            buf.extend_from_slice(&rec.level.to_le_bytes());
            buf.extend_from_slice(&rec.left.to_le_bytes());
            buf.extend_from_slice(&rec.right.to_le_bytes());
            flush_if_full(&mut buf, &mut writer)?;
        }
        for &s in &self.merge_scores {
            buf.extend_from_slice(&s.to_le_bytes());
            flush_if_full(&mut buf, &mut writer)?;
        }
        for &s in &self.slot_of_edge {
            buf.extend_from_slice(&s.to_le_bytes());
            flush_if_full(&mut buf, &mut writer)?;
        }
        for &(s, t) in &self.endpoints {
            buf.extend_from_slice(&s.to_le_bytes());
            buf.extend_from_slice(&t.to_le_bytes());
            flush_if_full(&mut buf, &mut writer)?;
        }
        for p in &self.profile {
            buf.extend_from_slice(&p.level.to_le_bytes());
            let clusters = u32::try_from(p.cluster_count).unwrap_or(u32::MAX);
            buf.extend_from_slice(&clusters.to_le_bytes());
            buf.extend_from_slice(&p.density.to_le_bytes());
            flush_if_full(&mut buf, &mut writer)?;
        }
        writer.write_all(&buf)?;
        writer.flush()
    }

    /// Reads and fully validates an index from the binary format,
    /// streaming each section through a fixed-size chunk buffer. The
    /// input is treated as untrusted; every structural violation is a
    /// typed [`IndexError`], never a panic.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError`] on I/O failure, a bad or unsupported
    /// header, short or overlong input, or any record that fails the
    /// [`from_parts`](Self::from_parts) validation rules.
    pub fn read<R: Read>(mut reader: R) -> Result<Self, IndexError> {
        let mut header = [0u8; HEADER_BYTES];
        reader.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IndexError::BadMagic
            } else {
                IndexError::Io(e)
            }
        })?;
        if header[..8] != MAGIC {
            return Err(IndexError::BadMagic);
        }
        let version = le_u32(&header[8..12]);
        if version != FORMAT_VERSION {
            return Err(IndexError::UnsupportedVersion(version));
        }
        let flags = le_u32(&header[12..16]);
        if flags != 0 {
            return Err(IndexError::UnsupportedFlags(flags));
        }
        let n = le_u64(&header[16..24]);
        let m = le_u64(&header[24..32]);
        let k = le_u64(&header[32..40]);
        let profile_count = le_u64(&header[40..48]);
        if n > u64::from(u32::MAX) || m.saturating_mul(2) > u64::from(u32::MAX) {
            return Err(IndexError::TooLarge { vertices: n, edges: m });
        }
        // Bound the variable counts by what the fixed counts allow
        // *before* allocating: a hostile header must not drive a huge
        // reservation.
        if k >= m.max(1) {
            return Err(IndexError::Corrupt {
                section: "header",
                index: 0,
                reason: format!("{k} merges cannot arise from {m} edges"),
            });
        }
        if profile_count > k {
            return Err(IndexError::Corrupt {
                section: "header",
                index: 0,
                reason: format!("{profile_count} profile points for {k} merges"),
            });
        }
        let (n, m, k, profile_count) = (n as usize, m as usize, k as usize, profile_count as usize);

        let mut merges = Vec::with_capacity(k);
        read_section(&mut reader, "merges", k, MERGE_BYTES, |rec| {
            merges.push(MergeRecord {
                level: le_u32(&rec[..4]),
                left: le_u32(&rec[4..8]),
                right: le_u32(&rec[8..12]),
                into: le_u32(&rec[4..8]).min(le_u32(&rec[8..12])),
            });
        })?;
        let mut merge_scores = Vec::with_capacity(k);
        read_section(&mut reader, "scores", k, 8, |rec| {
            merge_scores.push(f64::from_bits(le_u64(rec)));
        })?;
        let mut slot_of_edge = Vec::with_capacity(m);
        read_section(&mut reader, "slots", m, 4, |rec| {
            slot_of_edge.push(le_u32(rec));
        })?;
        let mut endpoints = Vec::with_capacity(m);
        read_section(&mut reader, "endpoints", m, 8, |rec| {
            endpoints.push((le_u32(&rec[..4]), le_u32(&rec[4..8])));
        })?;
        let mut profile = Vec::with_capacity(profile_count);
        read_section(&mut reader, "profile", profile_count, PROFILE_BYTES, |rec| {
            profile.push(DensityCut {
                level: le_u32(&rec[..4]),
                cluster_count: le_u32(&rec[4..8]) as usize,
                density: f64::from_bits(le_u64(&rec[8..16])),
            });
        })?;
        if reader.read(&mut [0u8; 1])? != 0 {
            return Err(IndexError::TrailingData);
        }
        Self::from_parts(n, m, merges, merge_scores, slot_of_edge, endpoints, profile)
    }
}

/// Streams `count` fixed-size records of one section through a chunked
/// buffer, invoking `visit` per record.
fn read_section<R: Read>(
    reader: &mut R,
    section: &'static str,
    count: usize,
    record_bytes: usize,
    mut visit: impl FnMut(&[u8]),
) -> Result<(), IndexError> {
    let mut buf = vec![0u8; CHUNK_RECORDS.min(count.max(1)) * record_bytes];
    let mut done = 0usize;
    while done < count {
        let chunk = CHUNK_RECORDS.min(count - done);
        let bytes = &mut buf[..chunk * record_bytes];
        reader.read_exact(bytes).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IndexError::Truncated { section, declared: count as u64, read: done as u64 }
            } else {
                IndexError::Io(e)
            }
        })?;
        for rec in bytes.chunks_exact(record_bytes) {
            visit(rec);
        }
        done += chunk;
    }
    Ok(())
}

/// Little-endian u32 from the first 4 bytes of `b`.
#[inline]
fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    for (dst, src) in a.iter_mut().zip(b) {
        *dst = *src;
    }
    u32::from_le_bytes(a)
}

/// Little-endian u64 from the first 8 bytes of `b`.
#[inline]
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    for (dst, src) in a.iter_mut().zip(b) {
        *dst = *src;
    }
    u64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_graph::generate::{gnm, WeightMode};
    use linkclust_parallel::LinkClustering;

    fn built(seed: u64) -> (linkclust_graph::WeightedGraph, SweepOutput, DendrogramIndex) {
        let g = gnm(40, 120, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        let output = LinkClustering::new().run(&g).expect("default config").output().clone();
        let index = DendrogramIndex::build(&g, &output).unwrap();
        (g, output, index)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (_, _, index) = built(1);
        let mut bytes = Vec::new();
        index.write(&mut bytes).unwrap();
        let back = DendrogramIndex::read(bytes.as_slice()).unwrap();
        assert_eq!(back, index);
    }

    #[test]
    fn cut_labels_match_the_live_output() {
        let (_, output, index) = built(2);
        for theta in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5] {
            assert_eq!(
                index.edge_labels_at_threshold(theta),
                output.edge_assignments_at_similarity(theta),
                "theta={theta}"
            );
        }
        assert_eq!(index.edge_labels_at_level(u32::MAX), output.edge_assignments());
    }

    #[test]
    fn best_cut_matches_the_live_dendrogram() {
        for seed in 0..4 {
            let (g, output, index) = built(seed);
            let live = output.dendrogram().best_density_cut(&g).unwrap();
            let ours = index.best_cut().unwrap();
            assert_eq!(ours.level, live.level);
            assert_eq!(ours.cluster_count, live.cluster_count);
            assert_eq!(ours.density.to_bits(), live.density.to_bits());
        }
    }

    #[test]
    fn vertex_membership_lists_incident_communities() {
        let (g, output, index) = built(3);
        use linkclust_graph::GraphView;
        let labels = output.edge_assignments_at_similarity(0.3);
        for v in 0..g.vertex_count() {
            let mut expected: Vec<u32> = (0..g.edge_count())
                .filter(|&e| {
                    let (s, t) = g.edge_endpoints(EdgeId::new(e));
                    s.index() == v || t.index() == v
                })
                .map(|e| labels[e])
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(index.membership_of_vertex(v, 0.3).unwrap(), expected, "v={v}");
        }
        assert!(index.membership_of_vertex(g.vertex_count(), 0.3).is_none());
        assert!(index.membership_of_edge(g.edge_count(), 0.3).is_none());
    }

    #[test]
    fn top_communities_match_linkcommunities_ordering() {
        use linkclust_core::communities::LinkCommunities;
        let (g, output, index) = built(4);
        let theta = 0.25;
        let comms =
            LinkCommunities::from_edge_labels(&g, &output.edge_assignments_at_similarity(theta));
        let ours = index.top_communities(theta, 5);
        assert_eq!(ours.len(), comms.len().min(5));
        for (mine, live) in ours.iter().zip(comms.communities()) {
            assert_eq!(mine.label, live.label);
            assert_eq!(mine.edge_count as usize, live.edge_count());
            assert_eq!(mine.vertex_count as usize, live.vertex_count());
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = linkclust_graph::GraphBuilder::new().build();
        let output = linkclust_core::LinkClustering::new().run(&g).output().clone();
        let index = DendrogramIndex::build(&g, &output).unwrap();
        assert!(index.best_cut().is_none());
        assert!(index.edge_labels_at_threshold(0.5).is_empty());
        let mut bytes = Vec::new();
        index.write(&mut bytes).unwrap();
        assert_eq!(DendrogramIndex::read(bytes.as_slice()).unwrap(), index);
    }

    #[test]
    fn coarse_output_is_rejected() {
        use linkclust_core::coarse::CoarseConfig;
        let g = gnm(30, 80, WeightMode::Unit, 9);
        let cfg = CoarseConfig::builder().phi(4).build().unwrap();
        let out = linkclust_core::LinkClustering::new().run_coarse(&g, cfg).unwrap();
        assert!(matches!(DendrogramIndex::build(&g, out.output()), Err(IndexError::NoMergeScores)));
    }

    fn valid_bytes() -> Vec<u8> {
        let (_, _, index) = built(7);
        let mut bytes = Vec::new();
        index.write(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn bad_magic_and_short_input_are_rejected() {
        assert!(matches!(
            DendrogramIndex::read(&b"definitely not an index........."[..]),
            Err(IndexError::BadMagic)
        ));
        assert!(matches!(DendrogramIndex::read(&b"LNKCL"[..]), Err(IndexError::BadMagic)));
    }

    #[test]
    fn corrupt_header_fields_are_rejected() {
        let mut bad_version = valid_bytes();
        bad_version[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            DendrogramIndex::read(bad_version.as_slice()),
            Err(IndexError::UnsupportedVersion(9))
        ));

        let mut bad_flags = valid_bytes();
        bad_flags[12..16].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            DendrogramIndex::read(bad_flags.as_slice()),
            Err(IndexError::UnsupportedFlags(3))
        ));

        let mut too_large = valid_bytes();
        too_large[24..32].copy_from_slice(&(u64::from(u32::MAX)).to_le_bytes());
        assert!(matches!(
            DendrogramIndex::read(too_large.as_slice()),
            Err(IndexError::TooLarge { .. })
        ));

        // A merge count the edge count cannot support is caught before
        // any allocation.
        let mut hostile_k = valid_bytes();
        hostile_k[32..40].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            DendrogramIndex::read(hostile_k.as_slice()),
            Err(IndexError::Corrupt { section: "header", .. })
        ));
    }

    #[test]
    fn truncation_names_the_section() {
        let bytes = valid_bytes();
        // Chop mid-way through the file: some section comes up short.
        match DendrogramIndex::read(&bytes[..HEADER_BYTES + 5]).unwrap_err() {
            IndexError::Truncated { section: "merges", .. } => {}
            other => panic!("unexpected error {other}"),
        }
        match DendrogramIndex::read(&bytes[..bytes.len() - 1]).unwrap_err() {
            IndexError::Truncated { section: "profile", .. } => {}
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = valid_bytes();
        bytes.push(0x55);
        assert!(matches!(DendrogramIndex::read(bytes.as_slice()), Err(IndexError::TrailingData)));
    }

    #[test]
    fn dead_cluster_merges_are_rejected() {
        // Merge 1 re-references cluster 1, consumed by merge 0 — the
        // doubly-merged defect that export traversals choke on.
        let rec = |level, left: u32, right: u32| MergeRecord {
            level,
            left,
            right,
            into: left.min(right),
        };
        let err = DendrogramIndex::from_parts(
            4,
            3,
            vec![rec(1, 0, 1), rec(2, 1, 2)],
            vec![0.9, 0.8],
            vec![0, 1, 2],
            vec![(0, 1), (1, 2), (2, 3)],
            vec![],
        )
        .unwrap_err();
        match err {
            IndexError::Corrupt { section: "merges", index: 1, reason } => {
                assert!(reason.contains("already consumed"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn structural_corruption_is_rejected_per_section() {
        let rec = |level, left: u32, right: u32| MergeRecord {
            level,
            left,
            right,
            into: left.min(right),
        };
        let endpoints = vec![(0u32, 1u32), (1, 2), (2, 3)];
        let base_profile = vec![DensityCut { level: 1, density: 0.0, cluster_count: 2 }];

        // Decreasing levels.
        assert!(matches!(
            DendrogramIndex::from_parts(
                4,
                3,
                vec![rec(2, 0, 1), rec(1, 0, 2)],
                vec![0.9, 0.8],
                vec![0, 1, 2],
                endpoints.clone(),
                vec![],
            ),
            Err(IndexError::Corrupt { section: "merges", .. })
        ));
        // Increasing scores.
        assert!(matches!(
            DendrogramIndex::from_parts(
                4,
                3,
                vec![rec(1, 0, 1)],
                vec![f64::NAN],
                vec![0, 1, 2],
                endpoints.clone(),
                base_profile,
            ),
            Err(IndexError::Corrupt { section: "scores", .. })
        ));
        // Duplicate slot.
        assert!(matches!(
            DendrogramIndex::from_parts(
                4,
                3,
                vec![],
                vec![],
                vec![0, 0, 2],
                endpoints.clone(),
                vec![],
            ),
            Err(IndexError::Corrupt { section: "slots", .. })
        ));
        // Self-loop endpoint.
        assert!(matches!(
            DendrogramIndex::from_parts(
                4,
                3,
                vec![],
                vec![],
                vec![0, 1, 2],
                vec![(0, 1), (2, 2), (1, 3)],
                vec![],
            ),
            Err(IndexError::Corrupt { section: "endpoints", .. })
        ));
        // Profile point with the wrong cluster count.
        assert!(matches!(
            DendrogramIndex::from_parts(
                4,
                3,
                vec![rec(1, 0, 1)],
                vec![0.9],
                vec![0, 1, 2],
                endpoints,
                vec![DensityCut { level: 1, density: 0.0, cluster_count: 7 }],
            ),
            Err(IndexError::Corrupt { section: "profile", .. })
        ));
    }

    #[test]
    fn error_messages_render() {
        assert!(IndexError::BadMagic.to_string().contains("magic"));
        assert!(IndexError::NoMergeScores.to_string().contains("coarse"));
        let e = IndexError::Truncated { section: "slots", declared: 10, read: 3 };
        assert!(e.to_string().contains("slots"));
        let e = IndexError::Corrupt { section: "merges", index: 4, reason: "x".into() };
        assert!(e.to_string().contains("merges record 4"));
        let e = IndexError::Io(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
