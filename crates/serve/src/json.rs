//! A minimal, strict, dependency-free JSON parser and writer.
//!
//! The serve protocol is line-delimited JSON over a socket and the
//! workspace policy forbids external dependencies, so the crate carries
//! its own parser. It is deliberately small: full JSON value grammar,
//! UTF-8 escapes, no extensions (no comments, no trailing commas, no
//! NaN/Infinity). Requests are untrusted input — every malformed byte
//! sequence must come back as `Err`, never a panic.

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if this is a number
    /// that is a whole number in `[0, 2^53]` (exactly representable).
    #[must_use]
    pub fn as_index(&self) -> Option<u64> {
        let x = self.as_f64()?;
        // float-cmp: exact range/wholeness test (NaN fails `contains`) —
        // any rounding would silently accept a different id than the
        // client sent.
        #[allow(clippy::float_cmp)]
        if (0.0..=9_007_199_254_740_992.0).contains(&x) && x.trunc() == x {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(x as u64)
        } else {
            None
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input
/// (ignoring surrounding whitespace).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

/// Nesting depth limit: hostile inputs must not overflow the stack.
const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_owned());
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let s = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(bytes, pos) {
        return Err(format!("invalid number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(&b'e' | &b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(&b'+' | &b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    let x: f64 = text.parse().map_err(|_| format!("unparsable number {text:?}"))?;
    if !x.is_finite() {
        return Err(format!("number out of range: {text}"));
    }
    Ok(Json::Num(x))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = parse_hex4(bytes, pos)?;
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low half.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err("lone high surrogate".to_owned());
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_owned());
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(cp).ok_or("lone low surrogate")?
                        };
                        out.push(ch);
                    }
                    other => return Err(format!("invalid escape \\{}", *other as char)),
                }
            }
            Some(&b) if b < 0x20 => return Err("control character in string".to_owned()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is valid).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut cp = 0u32;
    for _ in 0..4 {
        let b = bytes.get(*pos).ok_or("unterminated \\u escape")?;
        let digit = match b {
            b'0'..=b'9' => u32::from(b - b'0'),
            b'a'..=b'f' => u32::from(b - b'a') + 10,
            b'A'..=b'F' => u32::from(b - b'A') + 10,
            _ => return Err("invalid hex digit in \\u escape".to_owned()),
        };
        cp = cp * 16 + digit;
        *pos += 1;
    }
    Ok(cp)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted and escaped).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `x` to `out` as a JSON number. Rust's shortest-round-trip
/// `Display` for `f64` is valid JSON for every finite value; non-finite
/// values (which JSON cannot represent) render as `null`.
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `Display` omits the decimal point for whole numbers; that is
        // still valid JSON, so nothing more to do.
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let v = parse(r#"{"op":"cut","theta":0.25}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("cut"));
        assert_eq!(v.get("theta").unwrap().as_f64(), Some(0.25));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v =
            parse(r#"{"a":[1,2.5,-3e2,true,false,null],"s":"x\n\"\u0041\ud83d\ude00"}"#).unwrap();
        let Json::Arr(items) = v.get("a").unwrap() else { panic!("not an array") };
        assert_eq!(items.len(), 6);
        assert_eq!(items[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"A\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a':1}",
            "01x",
            "1.2.3",
            "\"unterminated",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nul",
            "truefalse",
            "{\"a\":1} extra",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_without_stack_overflow() {
        let hostile = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&hostile).is_err());
    }

    #[test]
    fn as_index_accepts_exact_whole_numbers_only() {
        assert_eq!(parse("7").unwrap().as_index(), Some(7));
        assert_eq!(parse("0").unwrap().as_index(), Some(0));
        assert_eq!(parse("7.5").unwrap().as_index(), None);
        assert_eq!(parse("-1").unwrap().as_index(), None);
        assert_eq!(parse("1e300").unwrap().as_index(), None);
    }

    #[test]
    fn writer_escapes_and_round_trips() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(parse(&out).unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
        let mut num = String::new();
        write_f64(&mut num, 0.1);
        assert_eq!(parse(&num).unwrap().as_f64(), Some(0.1));
        let mut nan = String::new();
        write_f64(&mut nan, f64::NAN);
        assert_eq!(nan, "null");
    }
}
