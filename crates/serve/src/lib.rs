//! Resident link-clustering service.
//!
//! The paper's pipeline computes a *whole dendrogram* per run, but most
//! consumers then ask many cheap questions of that one artifact: "cut
//! at θ", "which community is this edge in", "the ten biggest
//! communities", "the density-optimal cut". This crate serves those
//! questions without recomputing anything:
//!
//! * [`index::DendrogramIndex`] — a versioned, validated serialization
//!   of one clustering run (merge forest + similarities + slot
//!   permutation + endpoints + density profile) whose answers are
//!   bit-identical to the live structures it froze;
//! * [`server::Server`] — a resident server speaking line-delimited
//!   JSON over TCP, answering queries from the published index behind
//!   an LRU [`cache::AnswerCache`] while *batch admissions* (full
//!   reclusters) run on a worker pool and swap the index atomically;
//! * [`json`] — the dependency-free strict JSON subset the protocol
//!   uses;
//! * [`metrics`] — live runtime observability: Prometheus text
//!   exposition ([`Server::metrics_text`]), a runtime-gauge ticker, and
//!   a plain-HTTP `GET /metrics` responder.
//!
//! The `linkclustd` binary in the workspace root wraps [`server`] in a
//! CLI; `bench_serve` drives a load mix through the socket and emits
//! latency quantiles per query kind.

pub mod cache;
pub mod index;
pub mod json;
pub mod metrics;
pub mod server;

pub use cache::AnswerCache;
pub use index::{DendrogramIndex, IndexError, TopCommunity};
pub use metrics::{read_rss_bytes, spawn_http, spawn_ticker, RuntimeSample, TICK_INTERVAL};
pub use server::{ServeGraph, Server, ServerConfig};
