//! Live runtime metrics for the resident daemon.
//!
//! [`Server::metrics_text`](crate::Server::metrics_text) renders the
//! full Prometheus exposition; this module holds the pieces it samples:
//! process RSS read from `/proc/self/status` (no dependencies, `None`
//! off Linux), the fixed-capacity [`TimeSeriesRing`]s a low-overhead
//! ticker pushes runtime-gauge samples into, and the tiny plain-HTTP
//! `GET /metrics` responder `linkclustd --metrics-port` exposes so any
//! Prometheus scraper can pull the daemon without speaking the JSON
//! line protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use linkclust_core::telemetry::TimeSeriesRing;
use linkclust_parallel::pool::ServiceThread;

use crate::server::Server;

/// Samples retained per runtime gauge ring (at the daemon's 1 s tick,
/// a ten-minute window).
pub(crate) const RING_CAPACITY: usize = 600;

/// Current and peak resident set size in bytes, read from
/// `/proc/self/status` (`VmRSS` / `VmHWM`). `None` when the pseudo-file
/// is unavailable (non-Linux) or unparseable.
#[must_use]
pub fn read_rss_bytes() -> Option<(u64, u64)> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let mut current = None;
    let mut peak = None;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            current = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            peak = parse_kb(rest);
        }
    }
    Some((current?, peak?))
}

/// Parses a `/proc/self/status` memory field (`  1234 kB`) into bytes.
fn parse_kb(rest: &str) -> Option<u64> {
    let mut it = rest.split_whitespace();
    let value: u64 = it.next()?.parse().ok()?;
    match it.next() {
        Some("kB") => value.checked_mul(1024),
        _ => None,
    }
}

/// One snapshot of every runtime gauge the daemon publishes.
/// Unavailable values (RSS off Linux) are `NaN` — the exposition
/// renders them as the `NaN` token and the JSON writers as `null`.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeSample {
    /// Seconds since the server was assembled.
    pub uptime_seconds: f64,
    /// Current resident set size, bytes.
    pub rss_current_bytes: f64,
    /// Peak resident set size, bytes.
    pub rss_peak_bytes: f64,
    /// Rendered answers currently cached.
    pub cache_entries: f64,
    /// Lifetime cache hit ratio (0 before any query).
    pub cache_hit_ratio: f64,
    /// Jobs waiting in the worker-pool queue.
    pub pool_queue_depth: f64,
    /// The published index generation.
    pub index_generation: f64,
}

/// The fixed-capacity time-series rings a ticker samples runtime gauges
/// into. Bounded memory regardless of process lifetime; the stats
/// document reports each ring's latest value and window extremes.
pub(crate) struct RuntimeRings {
    /// Ticker invocations since startup.
    pub(crate) ticks: u64,
    /// One named ring per gauge, in stable display order.
    pub(crate) rings: Vec<(&'static str, TimeSeriesRing)>,
}

/// Stable ring/gauge names, in display order (must match the field
/// order [`RuntimeRings::push`] samples them in).
pub(crate) const RING_NAMES: [&str; 6] = [
    "rss_current_bytes",
    "rss_peak_bytes",
    "cache_entries",
    "cache_hit_ratio",
    "pool_queue_depth",
    "index_generation",
];

impl RuntimeRings {
    pub(crate) fn new() -> Self {
        RuntimeRings {
            ticks: 0,
            rings: RING_NAMES.iter().map(|&n| (n, TimeSeriesRing::new(RING_CAPACITY))).collect(),
        }
    }

    /// Pushes one sample of every gauge, timestamped with the uptime
    /// second it was taken at.
    pub(crate) fn push(&mut self, sample: &RuntimeSample) {
        self.ticks += 1;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // uptime is non-negative and far below 2^53 seconds
        let at = sample.uptime_seconds.max(0.0) as u64;
        let values = [
            sample.rss_current_bytes,
            sample.rss_peak_bytes,
            sample.cache_entries,
            sample.cache_hit_ratio,
            sample.pool_queue_depth,
            sample.index_generation,
        ];
        for ((_, ring), value) in self.rings.iter_mut().zip(values) {
            ring.push(at, value);
        }
    }
}

/// How often the daemon's runtime ticker samples the gauges.
pub const TICK_INTERVAL: Duration = Duration::from_secs(1);

/// Spawns the runtime-metrics ticker: a service thread sampling
/// [`Server::sample_runtime`] every [`TICK_INTERVAL`] until the
/// returned handle is dropped. Overhead per tick is one `/proc` read
/// and a few short lock holds.
#[must_use]
pub fn spawn_ticker(server: Arc<Server>) -> ServiceThread {
    ServiceThread::spawn("metrics-ticker", move |shutdown| loop {
        server.sample_runtime();
        if shutdown.wait_timeout(TICK_INTERVAL) {
            return;
        }
    })
}

/// Spawns the plain-HTTP metrics responder on `listener`: answers
/// `GET /metrics` with the server's current Prometheus exposition
/// (HTTP/1.1, `Connection: close`), `404` for any other path, and
/// `405` for any other method. Stops when the returned handle is
/// dropped.
#[must_use]
pub fn spawn_http(listener: TcpListener, server: Arc<Server>) -> ServiceThread {
    ServiceThread::spawn("metrics-http", move |shutdown| {
        // Non-blocking accept + interruptible waits: shutdown never has
        // to wait for one more scrape to arrive.
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // One short-lived request per connection; blocking
                    // I/O with a timeout keeps a stalled client from
                    // wedging the responder.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                    handle_http_request(stream, &server);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if shutdown.wait_timeout(Duration::from_millis(50)) {
                        return;
                    }
                }
                Err(_) => {
                    if shutdown.wait_timeout(Duration::from_millis(200)) {
                        return;
                    }
                }
            }
        }
    })
}

/// Reads one HTTP request head and writes the matching response. All
/// I/O errors abandon the connection silently — a broken scraper must
/// not affect the daemon.
fn handle_http_request(stream: std::net::TcpStream, server: &Server) {
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so the client sees a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "only GET is supported\n".to_string())
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", "text/plain; version=0.0.4", server.metrics_text())
    } else {
        ("404 Not Found", "text/plain", "try /metrics\n".to_string())
    };
    let mut out = stream;
    let _ = write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = out.write_all(body.as_bytes());
    let _ = out.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_kb_handles_the_proc_format() {
        assert_eq!(parse_kb("    1234 kB"), Some(1234 * 1024));
        assert_eq!(parse_kb(" 0 kB"), Some(0));
        assert_eq!(parse_kb(" 12"), None);
        assert_eq!(parse_kb("junk kB"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_is_readable_on_linux() {
        let (current, peak) = read_rss_bytes().expect("/proc/self/status parses");
        assert!(current > 0, "a live process has resident pages");
        assert!(peak >= current, "peak tracks the high-water mark");
    }

    #[test]
    fn rings_sample_in_name_order_and_stay_bounded() {
        let mut rings = RuntimeRings::new();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            #[allow(clippy::cast_precision_loss)] // test values are small
            let sample = RuntimeSample {
                uptime_seconds: i as f64,
                rss_current_bytes: 1.0,
                rss_peak_bytes: 2.0,
                cache_entries: 3.0,
                cache_hit_ratio: 0.5,
                pool_queue_depth: 4.0,
                index_generation: 5.0,
            };
            rings.push(&sample);
        }
        assert_eq!(rings.ticks, RING_CAPACITY as u64 + 10);
        for (name, ring) in &rings.rings {
            assert_eq!(ring.len(), RING_CAPACITY, "{name} exceeded capacity");
        }
        let by_name: Vec<f64> =
            rings.rings.iter().map(|(_, r)| r.latest().expect("sampled").1).collect();
        assert_eq!(by_name, vec![1.0, 2.0, 3.0, 0.5, 4.0, 5.0], "field order matches RING_NAMES");
    }
}
