//! The resident query server.
//!
//! A [`Server`] owns a graph, a published [`DendrogramIndex`], and a
//! [`WorkerPool`]. Light queries (cut, membership, top-k, profile,
//! best-cut) are answered from the published index under a read lock
//! and cached in an [`AnswerCache`]; heavy *batch admissions* (full
//! reclusters) are enqueued on the pool with
//! [`WorkerPool::submit`] and swap the published index on completion
//! while queries keep serving the old one.
//!
//! The wire protocol is line-delimited JSON over TCP — one request
//! object per line, one response object per line, no framing beyond
//! `\n`. Requests are untrusted: every malformed line produces an
//! `{"ok":false,"error":...}` response, never a panic or a dropped
//! connection.
//!
//! ```text
//! {"op":"cut","theta":0.3}            -> {"ok":true,"generation":1,"level":..,"clusters":..}
//! {"op":"edge","id":4,"theta":0.3}    -> {"ok":true,"generation":1,"label":..}
//! {"op":"vertex","id":2,"theta":0.3}  -> {"ok":true,"generation":1,"labels":[..]}
//! {"op":"topk","theta":0.3,"k":5}     -> {"ok":true,"generation":1,"communities":[..]}
//! {"op":"profile"}                    -> {"ok":true,"generation":1,"points":[..]}
//! {"op":"best"}                       -> {"ok":true,"generation":1,"cut":{..}}
//! {"op":"stats"}                      -> the stats document (see [`Server::stats_json`])
//! {"op":"metrics"}                    -> {"ok":true,"exposition":"..."} (Prometheus text)
//! {"op":"recluster"}                  -> {"ok":true,"enqueued":true}
//! {"op":"shutdown"}                   -> {"ok":true,"bye":true}, then the server exits
//! ```
//!
//! Connections are handled sequentially (queries are microseconds; the
//! expensive work runs on the pool), which keeps the server free of
//! both bare threads and hand-rolled atomics: the swap generation lives
//! behind the published-index `RwLock`. Lock discipline: the write lock
//! is released *before* the cache is cleared, and a query re-checks the
//! generation before caching its rendered answer, so a swap can never
//! strand a stale entry in the cache.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

use linkclust_core::telemetry::metrics::{MetricKind, MetricsWriter};
use linkclust_core::telemetry::{Counter, LogHistogram, Logger, Phase, RunRecorder, Telemetry};
use linkclust_graph::{CsrGraph, GraphView, WeightedGraph};
use linkclust_parallel::{LinkClustering, WorkerPool};

use crate::cache::AnswerCache;
use crate::index::{DendrogramIndex, IndexError};
use crate::json::{self, Json};
use crate::metrics::{read_rss_bytes, RuntimeRings, RuntimeSample};

/// The graph a server answers queries about — either backend, fixed at
/// startup (both produce bit-identical clusterings).
#[derive(Clone, Debug)]
pub enum ServeGraph {
    /// Adjacency-list backend.
    Weighted(WeightedGraph),
    /// Compressed-sparse-row backend.
    Csr(CsrGraph),
}

impl ServeGraph {
    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        match self {
            ServeGraph::Weighted(g) => g.edge_count(),
            ServeGraph::Csr(g) => g.edge_count(),
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        match self {
            ServeGraph::Weighted(g) => g.vertex_count(),
            ServeGraph::Csr(g) => g.vertex_count(),
        }
    }

    /// Runs a full clustering on `threads` threads and freezes the
    /// result into an index.
    fn cluster_to_index(&self, threads: usize) -> Result<DendrogramIndex, IndexError> {
        let facade = LinkClustering::new().threads(threads);
        match self {
            ServeGraph::Weighted(g) => {
                let result = facade.run(g).map_err(|e| config_corrupt(&e))?;
                DendrogramIndex::build(g, result.output())
            }
            ServeGraph::Csr(g) => {
                let result = facade.run(g).map_err(|e| config_corrupt(&e))?;
                DendrogramIndex::build(g, result.output())
            }
        }
    }
}

/// Maps the (unreachable for a default config) facade configuration
/// error into the index error space so startup has one error type.
fn config_corrupt(e: &linkclust_core::ConfigError) -> IndexError {
    IndexError::Corrupt { section: "config", index: 0, reason: e.to_string() }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads for clustering runs and batch admissions. With 1
    /// thread, admissions run inline on the submitting thread (see
    /// [`WorkerPool::submit`]).
    pub threads: usize,
    /// Maximum cached rendered answers.
    pub cache_capacity: usize,
    /// Structured-log sink for lifecycle events (connection open/close,
    /// admission start/swap/failure). Disabled by default.
    pub logger: Logger,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { threads: 2, cache_capacity: 512, logger: Logger::disabled() }
    }
}

/// The published index plus its monotone generation. Swapped atomically
/// (under the write lock) by batch admissions.
struct Published {
    generation: u64,
    index: Arc<DendrogramIndex>,
}

/// Query kinds, used as cache-key discriminants and histogram slots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum QueryKind {
    Cut = 0,
    Edge = 1,
    Vertex = 2,
    TopK = 3,
    Profile = 4,
    Best = 5,
}

impl QueryKind {
    const ALL: [QueryKind; 6] = [
        QueryKind::Cut,
        QueryKind::Edge,
        QueryKind::Vertex,
        QueryKind::TopK,
        QueryKind::Profile,
        QueryKind::Best,
    ];

    fn name(self) -> &'static str {
        match self {
            QueryKind::Cut => "cut",
            QueryKind::Edge => "edge",
            QueryKind::Vertex => "vertex",
            QueryKind::TopK => "topk",
            QueryKind::Profile => "profile",
            QueryKind::Best => "best",
        }
    }
}

/// Per-kind latency histograms and lifetime counters.
struct ServeStats {
    hists: Vec<LogHistogram>,
    counts: [u64; 6],
    admissions: u64,
    admit_failures: u64,
    swaps: u64,
}

impl ServeStats {
    fn new() -> Self {
        ServeStats {
            hists: (0..6).map(|_| LogHistogram::default()).collect(),
            counts: [0; 6],
            admissions: 0,
            admit_failures: 0,
            swaps: 0,
        }
    }
}

/// State shared between the serving thread and admission jobs. Holds no
/// [`WorkerPool`] — jobs capture an `Arc<Shared>`, and keeping the pool
/// outside the cycle lets the pool's `Drop` join its workers safely.
struct Shared {
    graph: ServeGraph,
    threads: usize,
    published: RwLock<Published>,
    cache: Mutex<AnswerCache>,
    stats: Mutex<ServeStats>,
    telemetry: Telemetry,
    recorder: Arc<RunRecorder>,
    logger: Logger,
    started: Instant,
    runtime: Mutex<RuntimeRings>,
}

/// The resident clustering server. See the [module docs](self).
pub struct Server {
    shared: Arc<Shared>,
    pool: WorkerPool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("generation", &self.generation())
            .field("edges", &self.shared.graph.edge_count())
            .field("vertices", &self.shared.graph.vertex_count())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Clusters `graph` once (synchronously) and stands the server up
    /// around the resulting index.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures (e.g. a coarse output —
    /// impossible for the default fine-grained pipeline used here).
    pub fn new(graph: ServeGraph, config: ServerConfig) -> Result<Self, IndexError> {
        let index = graph.cluster_to_index(config.threads)?;
        Ok(Self::assemble(graph, index, config))
    }

    /// Stands the server up around a pre-built (e.g. loaded) index
    /// after verifying it describes `graph` — counts and every edge's
    /// endpoints must match.
    ///
    /// # Errors
    ///
    /// [`IndexError::Corrupt`] if the index disagrees with the graph.
    pub fn with_index(
        graph: ServeGraph,
        index: DendrogramIndex,
        config: ServerConfig,
    ) -> Result<Self, IndexError> {
        if index.edge_count() != graph.edge_count() || index.vertex_count() != graph.vertex_count()
        {
            return Err(IndexError::Corrupt {
                section: "header",
                index: 0,
                reason: format!(
                    "index is over {} vertices / {} edges but the graph has {} / {}",
                    index.vertex_count(),
                    index.edge_count(),
                    graph.vertex_count(),
                    graph.edge_count()
                ),
            });
        }
        for e in 0..graph.edge_count() {
            let id = linkclust_graph::EdgeId::new(e);
            let (s, t) = match &graph {
                ServeGraph::Weighted(g) => g.edge_endpoints(id),
                ServeGraph::Csr(g) => g.edge_endpoints(id),
            };
            if index.endpoints(e) != (u32::from(s), u32::from(t)) {
                return Err(IndexError::Corrupt {
                    section: "endpoints",
                    index: e as u64,
                    reason: "edge endpoints do not match the serving graph".to_string(),
                });
            }
        }
        Ok(Self::assemble(graph, index, config))
    }

    fn assemble(graph: ServeGraph, index: DendrogramIndex, config: ServerConfig) -> Self {
        let recorder = Arc::new(RunRecorder::new());
        let telemetry = Telemetry::new(recorder.clone());
        let threads = config.threads.max(1);
        let shared = Arc::new(Shared {
            graph,
            threads,
            published: RwLock::new(Published { generation: 1, index: Arc::new(index) }),
            cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
            stats: Mutex::new(ServeStats::new()),
            telemetry: telemetry.clone(),
            recorder,
            logger: config.logger,
            started: Instant::now(),
            runtime: Mutex::new(RuntimeRings::new()),
        });
        let pool = WorkerPool::new(threads).with_telemetry(telemetry);
        Server { shared, pool }
    }

    /// The current index generation (starts at 1, bumped per swap).
    ///
    /// # Panics
    ///
    /// Never — lock poisoning is recovered from.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.shared.published.read().unwrap_or_else(PoisonError::into_inner).generation
    }

    /// Seconds since the server was assembled.
    #[must_use]
    pub fn uptime_seconds(&self) -> f64 {
        self.shared.started.elapsed().as_secs_f64()
    }

    /// Jobs currently waiting in the worker-pool queue (see
    /// [`WorkerPool::queue_depth`]).
    #[must_use]
    pub fn pool_queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// The logger this server emits lifecycle events through.
    #[must_use]
    pub fn logger(&self) -> &Logger {
        &self.shared.logger
    }

    /// Snapshots every runtime gauge (RSS, cache occupancy and hit
    /// ratio, pool queue depth, generation, uptime). RSS fields are
    /// `NaN` when `/proc/self/status` is unavailable.
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // gauge exposition is approximate by design
    pub fn runtime_sample(&self) -> RuntimeSample {
        let (rss_current, rss_peak) =
            read_rss_bytes().map_or((f64::NAN, f64::NAN), |(c, p)| (c as f64, p as f64));
        let (entries, hits, misses) = {
            let cache = self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
            let (h, m) = cache.stats();
            (cache.len(), h, m)
        };
        let total = hits + misses;
        RuntimeSample {
            uptime_seconds: self.uptime_seconds(),
            rss_current_bytes: rss_current,
            rss_peak_bytes: rss_peak,
            cache_entries: entries as f64,
            cache_hit_ratio: if total == 0 { 0.0 } else { hits as f64 / total as f64 },
            pool_queue_depth: self.pool.queue_depth() as f64,
            index_generation: self.generation() as f64,
        }
    }

    /// Takes one runtime sample and pushes it into the time-series
    /// rings (bounded memory; see `metrics::RING_CAPACITY`). The
    /// daemon's ticker calls this once per second;
    /// [`stats_json`](Self::stats_json) also calls it so the stats
    /// document is never staler than its own request.
    pub fn sample_runtime(&self) {
        let sample = self.runtime_sample();
        let mut runtime = self.shared.runtime.lock().unwrap_or_else(PoisonError::into_inner);
        runtime.push(&sample);
    }

    /// Renders the full Prometheus text exposition: every telemetry
    /// counter (`linkclustd_<name>_total`), per-phase wall-clock and
    /// call totals, the per-kind query latency histograms
    /// (`linkclustd_query_latency_seconds{kind=...}`), and the runtime
    /// gauges sampled live at scrape time.
    ///
    /// # Panics
    ///
    /// Never — lock poisoning is recovered from.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let report = self.shared.recorder.report();
        let sample = self.runtime_sample();
        let ticks = {
            let runtime = self.shared.runtime.lock().unwrap_or_else(PoisonError::into_inner);
            runtime.ticks
        };
        let mut w = MetricsWriter::new();

        for c in Counter::ALL {
            let name = format!("linkclustd_{}_total", c.name());
            w.family(&name, c.describe(), MetricKind::Counter);
            w.sample_u64(&name, &[], report.counter(c));
        }

        w.family(
            "linkclustd_phase_seconds_total",
            "Total wall-clock seconds spent in each telemetry phase.",
            MetricKind::Counter,
        );
        for p in Phase::ALL {
            #[allow(clippy::cast_precision_loss)] // exposition is approximate
            let seconds = report.phase_nanos(p) as f64 / 1e9;
            w.sample("linkclustd_phase_seconds_total", &[("phase", p.name())], seconds);
        }
        w.family(
            "linkclustd_phase_calls_total",
            "Spans recorded for each telemetry phase.",
            MetricKind::Counter,
        );
        for p in Phase::ALL {
            w.sample_u64(
                "linkclustd_phase_calls_total",
                &[("phase", p.name())],
                report.phase_calls(p),
            );
        }

        w.family(
            "linkclustd_query_latency_seconds",
            "Per-kind query latency (log-linear buckets, ~1.6% relative error).",
            MetricKind::Histogram,
        );
        {
            let stats = self.shared.stats.lock().unwrap_or_else(PoisonError::into_inner);
            for kind in QueryKind::ALL {
                w.histogram(
                    "linkclustd_query_latency_seconds",
                    &[("kind", kind.name())],
                    &stats.hists[kind as usize],
                    1e9,
                );
            }
        }

        w.family("linkclustd_uptime_seconds", "Seconds since startup.", MetricKind::Gauge);
        w.sample("linkclustd_uptime_seconds", &[], sample.uptime_seconds);
        w.family(
            "linkclustd_rss_bytes",
            "Resident set size in bytes (NaN where /proc is unavailable).",
            MetricKind::Gauge,
        );
        w.sample("linkclustd_rss_bytes", &[("which", "current")], sample.rss_current_bytes);
        w.sample("linkclustd_rss_bytes", &[("which", "peak")], sample.rss_peak_bytes);
        w.family("linkclustd_cache_entries", "Rendered answers cached.", MetricKind::Gauge);
        w.sample("linkclustd_cache_entries", &[], sample.cache_entries);
        w.family(
            "linkclustd_cache_hit_ratio",
            "Lifetime answer-cache hit ratio.",
            MetricKind::Gauge,
        );
        w.sample("linkclustd_cache_hit_ratio", &[], sample.cache_hit_ratio);
        w.family(
            "linkclustd_pool_queue_depth",
            "Jobs waiting in the worker-pool queue.",
            MetricKind::Gauge,
        );
        w.sample("linkclustd_pool_queue_depth", &[], sample.pool_queue_depth);
        w.family(
            "linkclustd_index_generation",
            "Published index generation (starts at 1, bumps per swap).",
            MetricKind::Gauge,
        );
        w.sample("linkclustd_index_generation", &[], sample.index_generation);
        w.family(
            "linkclustd_runtime_ticks_total",
            "Runtime-gauge ticker invocations.",
            MetricKind::Counter,
        );
        w.sample_u64("linkclustd_runtime_ticks_total", &[], ticks);
        w.finish()
    }

    /// Renders the `metrics` op response: the full Prometheus
    /// exposition carried as one JSON-escaped string so it fits the
    /// line protocol.
    fn metrics_response(&self) -> String {
        let mut out = String::from("{\"ok\":true,\"exposition\":");
        json::write_escaped(&mut out, &self.metrics_text());
        out.push('}');
        out
    }

    /// Writes the currently published index in the versioned binary
    /// format (see [`DendrogramIndex::write`]).
    ///
    /// # Errors
    ///
    /// Propagates writer failures as [`IndexError::Io`].
    pub fn write_index<W: Write>(&self, writer: W) -> Result<(), IndexError> {
        let index = {
            let p = self.shared.published.read().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(&p.index)
        };
        index.write(writer).map_err(IndexError::Io)
    }

    /// Serves connections from `listener` sequentially until a client
    /// sends `{"op":"shutdown"}`. I/O errors on one connection abandon
    /// that connection only.
    ///
    /// # Errors
    ///
    /// Propagates accept failures from the listener itself.
    pub fn serve(&self, listener: &TcpListener) -> std::io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            if self.serve_connection(stream) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Handles one connection; returns `true` if it requested shutdown.
    fn serve_connection(&self, stream: TcpStream) -> bool {
        let peer = stream.peer_addr().map_or_else(|_| "unknown".to_string(), |a| a.to_string());
        self.shared.logger.info("conn_open", &[("peer", (&peer).into())]);
        let mut requests: u64 = 0;
        let shutdown = self.drive_connection(stream, &mut requests);
        self.shared.logger.info(
            "conn_close",
            &[
                ("peer", (&peer).into()),
                ("requests", requests.into()),
                ("shutdown", shutdown.into()),
            ],
        );
        shutdown
    }

    /// The connection read/respond loop; counts handled requests into
    /// `requests` so the close event can report them.
    fn drive_connection(&self, stream: TcpStream, requests: &mut u64) -> bool {
        let Ok(clone) = stream.try_clone() else { return false };
        let mut reader = BufReader::new(clone);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return false,
                Ok(_) => {}
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let (response, shutdown) = self.handle_line(trimmed);
            *requests += 1;
            if writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                return false;
            }
            if shutdown {
                return true;
            }
        }
    }

    /// Handles one request line and renders the response (without the
    /// trailing newline). Returns `(response, shutdown_requested)`.
    /// This is the whole protocol — [`serve`](Self::serve) is just
    /// socket plumbing around it.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return (error_response(&format!("malformed request: {e}")), false),
        };
        let Some(op) = request.get("op").and_then(Json::as_str) else {
            return (error_response("missing string field \"op\""), false);
        };
        match op {
            "cut" => (self.query(QueryKind::Cut, &request), false),
            "edge" => (self.query(QueryKind::Edge, &request), false),
            "vertex" => (self.query(QueryKind::Vertex, &request), false),
            "topk" => (self.query(QueryKind::TopK, &request), false),
            "profile" => (self.query(QueryKind::Profile, &request), false),
            "best" => (self.query(QueryKind::Best, &request), false),
            "stats" => (self.stats_json(), false),
            "metrics" => (self.metrics_response(), false),
            "recluster" => (self.admit_recluster(), false),
            "shutdown" => ("{\"ok\":true,\"bye\":true}".to_string(), true),
            other => (error_response(&format!("unknown op {other:?}")), false),
        }
    }

    /// Answers one cacheable query, timing it into the per-kind
    /// histogram and [`Phase::ServeQuery`].
    fn query(&self, kind: QueryKind, request: &Json) -> String {
        let start = Instant::now();
        let response = self.answer(kind, request);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.shared.telemetry.record_phase_nanos(Phase::ServeQuery, nanos);
        self.shared.telemetry.add(Counter::ServeQueries, 1);
        {
            let mut stats = self.shared.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.hists[kind as usize].record(nanos);
            stats.counts[kind as usize] += 1;
        }
        response
    }

    fn answer(&self, kind: QueryKind, request: &Json) -> String {
        // Snapshot the published index: the read lock is held only long
        // enough to clone the Arc, so queries never block an admission's
        // compute — only its (nanosecond) swap.
        let (generation, index) = {
            let p = self.shared.published.read().unwrap_or_else(PoisonError::into_inner);
            (p.generation, Arc::clone(&p.index))
        };

        // Resolve the threshold to a level first: the level is the
        // cache bucket, so nearby thetas share entries.
        let needs_theta =
            matches!(kind, QueryKind::Cut | QueryKind::Edge | QueryKind::Vertex | QueryKind::TopK);
        let level = if needs_theta {
            match request.get("theta").and_then(Json::as_f64) {
                Some(theta) if theta.is_finite() => index.level_for_threshold(theta),
                _ => return error_response("missing or non-finite number field \"theta\""),
            }
        } else {
            0
        };
        let aux = match kind {
            QueryKind::Cut => {
                u64::from(request.get("labels").and_then(Json::as_bool).unwrap_or(false))
            }
            QueryKind::Edge | QueryKind::Vertex => {
                match request.get("id").and_then(Json::as_index) {
                    Some(id) => id,
                    None => return error_response("missing non-negative integer field \"id\""),
                }
            }
            QueryKind::TopK => request.get("k").and_then(Json::as_index).unwrap_or(10),
            QueryKind::Profile | QueryKind::Best => 0,
        };

        let key = (kind as u8, level, aux);
        let cached = {
            let mut cache = self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
            cache.get(&key)
        };
        if let Some(hit) = cached {
            self.shared.telemetry.add(Counter::ServeCacheHits, 1);
            return hit;
        }
        self.shared.telemetry.add(Counter::ServeCacheMisses, 1);

        let rendered = render_answer(kind, &index, generation, level, aux);
        if let Ok(ref payload) = rendered {
            // Cache only if no swap invalidated this generation while we
            // were rendering (the swap's clear may already have run).
            let mut cache = self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
            let current =
                self.shared.published.read().unwrap_or_else(PoisonError::into_inner).generation;
            if current == generation {
                cache.put(key, payload.clone());
            }
        }
        rendered.unwrap_or_else(|e| error_response(&e))
    }

    /// Enqueues a full recluster on the pool. The job recomputes the
    /// clustering, rebuilds the index, and swaps it in; queries keep
    /// serving the old index throughout.
    fn admit_recluster(&self) -> String {
        {
            let mut stats = self.shared.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.admissions += 1;
        }
        self.shared.telemetry.add(Counter::ServeAdmissions, 1);
        self.shared.logger.info("admit_enqueued", &[("generation", self.generation().into())]);
        let shared = Arc::clone(&self.shared);
        self.pool.submit(move || {
            let start = Instant::now();
            let built = shared.graph.cluster_to_index(shared.threads);
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.telemetry.record_phase_nanos(Phase::ServeAdmit, nanos);
            match built {
                Ok(index) => {
                    let swap_start = Instant::now();
                    {
                        let mut p =
                            shared.published.write().unwrap_or_else(PoisonError::into_inner);
                        p.generation += 1;
                        p.index = Arc::new(index);
                    }
                    // Clear *after* releasing the write lock: queries
                    // take cache-then-published, so holding both here
                    // would invert the order.
                    {
                        let mut cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
                        cache.clear();
                    }
                    let swap_nanos =
                        u64::try_from(swap_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    shared.telemetry.record_phase_nanos(Phase::ServeSwap, swap_nanos);
                    shared.telemetry.add(Counter::ServeSwaps, 1);
                    let generation =
                        shared.published.read().unwrap_or_else(PoisonError::into_inner).generation;
                    {
                        let mut stats = shared.stats.lock().unwrap_or_else(PoisonError::into_inner);
                        stats.swaps += 1;
                    }
                    shared.logger.info(
                        "admit_swap",
                        &[("generation", generation.into()), ("build_nanos", nanos.into())],
                    );
                }
                Err(e) => {
                    {
                        let mut stats = shared.stats.lock().unwrap_or_else(PoisonError::into_inner);
                        stats.admit_failures += 1;
                    }
                    shared.logger.error("admit_failure", &[("error", (&e.to_string()).into())]);
                }
            }
        });
        "{\"ok\":true,\"enqueued\":true}".to_string()
    }

    /// Renders the stats document: per-kind latency quantiles, cache
    /// hit rate, admission/swap counts, the serve-phase telemetry
    /// totals, trace-drop count, and the runtime-gauge rings (one
    /// sample is taken first, so `runtime` is never empty or stale).
    /// Schema `linkclust-serve-stats/v2`.
    ///
    /// # Panics
    ///
    /// Never — lock poisoning is recovered from.
    #[must_use]
    pub fn stats_json(&self) -> String {
        self.sample_runtime();
        let generation = self.generation();
        let (hits, misses) = {
            let cache = self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
            cache.stats()
        };
        let report = self.shared.recorder.report();
        let mut out = String::new();
        out.push_str("{\"ok\":true,\"schema\":\"linkclust-serve-stats/v2\",\"generation\":");
        out.push_str(&generation.to_string());
        out.push_str(",\"uptime_seconds\":");
        json::write_f64(&mut out, self.uptime_seconds());
        out.push_str(",\"queries\":{");
        {
            let stats = self.shared.stats.lock().unwrap_or_else(PoisonError::into_inner);
            for (i, kind) in QueryKind::ALL.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let h = &stats.hists[*kind as usize];
                json::write_escaped(&mut out, kind.name());
                out.push_str(":{\"count\":");
                out.push_str(&stats.counts[*kind as usize].to_string());
                for (label, q) in [("p50_ns", 0.50), ("p90_ns", 0.90), ("p99_ns", 0.99)] {
                    out.push_str(",\"");
                    out.push_str(label);
                    out.push_str("\":");
                    out.push_str(&h.quantile(q).to_string());
                }
                out.push_str(",\"mean_ns\":");
                json::write_f64(&mut out, h.mean());
                out.push('}');
            }
            out.push_str("},\"cache\":{\"hits\":");
            out.push_str(&hits.to_string());
            out.push_str(",\"misses\":");
            out.push_str(&misses.to_string());
            out.push_str(",\"hit_rate\":");
            let total = hits + misses;
            json::write_f64(&mut out, if total == 0 { 0.0 } else { hits as f64 / total as f64 });
            out.push_str("},\"admissions\":");
            out.push_str(&stats.admissions.to_string());
            out.push_str(",\"admit_failures\":");
            out.push_str(&stats.admit_failures.to_string());
            out.push_str(",\"swaps\":");
            out.push_str(&stats.swaps.to_string());
        }
        out.push_str(",\"trace_events_dropped\":");
        out.push_str(&report.counter(Counter::TraceEventsDropped).to_string());
        out.push_str(",\"phases\":{");
        for (i, phase) in
            [Phase::ServeQuery, Phase::ServeAdmit, Phase::ServeSwap].iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, phase.name());
            out.push_str(":{\"nanos\":");
            out.push_str(&report.phase_nanos(*phase).to_string());
            out.push_str(",\"calls\":");
            out.push_str(&report.phase_calls(*phase).to_string());
            out.push('}');
        }
        out.push_str("},\"runtime\":{\"ticks\":");
        {
            let runtime = self.shared.runtime.lock().unwrap_or_else(PoisonError::into_inner);
            out.push_str(&runtime.ticks.to_string());
            out.push_str(",\"gauges\":{");
            for (i, (name, ring)) in runtime.rings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_escaped(&mut out, name);
                out.push_str(":{\"latest\":");
                json::write_f64(&mut out, ring.latest().map_or(f64::NAN, |(_, v)| v));
                out.push_str(",\"window_min\":");
                json::write_f64(&mut out, ring.window_min().unwrap_or(f64::NAN));
                out.push_str(",\"window_max\":");
                json::write_f64(&mut out, ring.window_max().unwrap_or(f64::NAN));
                out.push_str(",\"samples\":");
                out.push_str(&ring.len().to_string());
                out.push('}');
            }
        }
        out.push_str("}}}");
        out
    }

    /// Blocks until the published generation reaches at least `target`
    /// or roughly `timeout_ms` elapses; returns the generation seen
    /// last. Admissions are asynchronous, so tests and the shutdown
    /// path use this to await a swap.
    #[must_use]
    pub fn await_generation(&self, target: u64, timeout_ms: u64) -> u64 {
        let deadline = Instant::now() + std::time::Duration::from_millis(timeout_ms);
        loop {
            let g = self.generation();
            if g >= target || Instant::now() >= deadline {
                return g;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}

/// Renders one query answer against a pinned index snapshot, or an
/// error message for out-of-range ids.
fn render_answer(
    kind: QueryKind,
    index: &DendrogramIndex,
    generation: u64,
    level: u32,
    aux: u64,
) -> Result<String, String> {
    let mut out = String::new();
    out.push_str("{\"ok\":true,\"generation\":");
    out.push_str(&generation.to_string());
    match kind {
        QueryKind::Cut => {
            out.push_str(",\"level\":");
            out.push_str(&level.to_string());
            out.push_str(",\"clusters\":");
            out.push_str(&index.cluster_count_at_level(level).to_string());
            if aux == 1 {
                out.push_str(",\"labels\":[");
                for (e, label) in index.edge_labels_at_level(level).iter().enumerate() {
                    if e > 0 {
                        out.push(',');
                    }
                    out.push_str(&label.to_string());
                }
                out.push(']');
            }
        }
        QueryKind::Edge => {
            let e = usize::try_from(aux).map_err(|_| format!("edge id {aux} out of range"))?;
            let Some(label) = index.edge_label_at_level(e, level) else {
                return Err(format!(
                    "edge id {e} out of range (graph has {} edges)",
                    index.edge_count()
                ));
            };
            out.push_str(",\"label\":");
            out.push_str(&label.to_string());
        }
        QueryKind::Vertex => {
            let v = usize::try_from(aux).map_err(|_| format!("vertex id {aux} out of range"))?;
            let Some(labels) = index.vertex_labels_at_level(v, level) else {
                return Err(format!(
                    "vertex id {v} out of range (graph has {} vertices)",
                    index.vertex_count()
                ));
            };
            out.push_str(",\"labels\":[");
            for (i, label) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&label.to_string());
            }
            out.push(']');
        }
        QueryKind::TopK => {
            let k = usize::try_from(aux).unwrap_or(usize::MAX);
            out.push_str(",\"communities\":[");
            for (i, c) in index.top_communities_at_level(level, k).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"label\":");
                out.push_str(&c.label.to_string());
                out.push_str(",\"edges\":");
                out.push_str(&c.edge_count.to_string());
                out.push_str(",\"vertices\":");
                out.push_str(&c.vertex_count.to_string());
                out.push('}');
            }
            out.push(']');
        }
        QueryKind::Profile => {
            out.push_str(",\"points\":[");
            for (i, p) in index.profile().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_cut(&mut out, p.level, p.cluster_count, p.density);
            }
            out.push(']');
        }
        QueryKind::Best => {
            out.push_str(",\"cut\":");
            match index.best_cut() {
                Some(c) => write_cut(&mut out, c.level, c.cluster_count, c.density),
                None => out.push_str("null"),
            }
        }
    }
    out.push('}');
    Ok(out)
}

/// Appends one `{"level":..,"clusters":..,"density":..}` object.
fn write_cut(out: &mut String, level: u32, clusters: usize, density: f64) {
    out.push_str("{\"level\":");
    out.push_str(&level.to_string());
    out.push_str(",\"clusters\":");
    out.push_str(&clusters.to_string());
    out.push_str(",\"density\":");
    json::write_f64(out, density);
    out.push('}');
}

/// Renders an `{"ok":false,...}` response.
fn error_response(message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    json::write_escaped(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkclust_graph::generate::{gnm, WeightMode};

    fn test_server(threads: usize) -> Server {
        let g = gnm(24, 60, WeightMode::Uniform { lo: 0.3, hi: 1.5 }, 11);
        let config = ServerConfig { threads, cache_capacity: 64, ..ServerConfig::default() };
        Server::new(ServeGraph::Weighted(g), config).unwrap()
    }

    fn ok_json(server: &Server, line: &str) -> Json {
        let (response, shutdown) = server.handle_line(line);
        assert!(!shutdown);
        let v = json::parse(&response).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{response}");
        v
    }

    #[test]
    fn answers_every_query_kind() {
        let server = test_server(1);
        let cut = ok_json(&server, r#"{"op":"cut","theta":0.3}"#);
        assert!(cut.get("clusters").and_then(Json::as_index).is_some());
        let cut = ok_json(&server, r#"{"op":"cut","theta":0.3,"labels":true}"#);
        let Json::Arr(labels) = cut.get("labels").unwrap() else { panic!("labels array") };
        assert_eq!(labels.len(), 60);
        let edge = ok_json(&server, r#"{"op":"edge","id":5,"theta":0.3}"#);
        assert!(edge.get("label").and_then(Json::as_index).is_some());
        let vertex = ok_json(&server, r#"{"op":"vertex","id":3,"theta":0.3}"#);
        assert!(matches!(vertex.get("labels"), Some(Json::Arr(_))));
        let topk = ok_json(&server, r#"{"op":"topk","theta":0.3,"k":4}"#);
        let Json::Arr(comms) = topk.get("communities").unwrap() else { panic!() };
        assert!(comms.len() <= 4);
        let profile = ok_json(&server, r#"{"op":"profile"}"#);
        assert!(matches!(profile.get("points"), Some(Json::Arr(_))));
        let best = ok_json(&server, r#"{"op":"best"}"#);
        assert!(best.get("cut").is_some());
        let stats = ok_json(&server, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("schema").and_then(Json::as_str), Some("linkclust-serve-stats/v2"));
        assert!(stats.get("uptime_seconds").and_then(Json::as_f64).is_some());
        assert!(stats.get("trace_events_dropped").and_then(Json::as_index).is_some());
        let runtime = stats.get("runtime").expect("v2 stats carry a runtime object");
        assert!(runtime.get("ticks").and_then(Json::as_index).is_some_and(|t| t >= 1));
        let gauges = runtime.get("gauges").expect("runtime gauges");
        for name in crate::metrics::RING_NAMES {
            let g = gauges.get(name).unwrap_or_else(|| panic!("runtime gauge {name}"));
            assert!(g.get("samples").and_then(Json::as_index).is_some_and(|s| s >= 1), "{name}");
        }
    }

    #[test]
    fn hostile_requests_get_typed_errors_not_panics() {
        let server = test_server(1);
        for bad in [
            "not json at all",
            "{}",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"cut"}"#,
            r#"{"op":"cut","theta":"high"}"#,
            r#"{"op":"edge","theta":0.5}"#,
            r#"{"op":"edge","id":1e300,"theta":0.5}"#,
            r#"{"op":"edge","id":999999,"theta":0.5}"#,
            r#"{"op":"vertex","id":-3,"theta":0.5}"#,
            r#"{"op":"vertex","id":999999,"theta":0.5}"#,
        ] {
            let (response, shutdown) = server.handle_line(bad);
            assert!(!shutdown);
            let v = json::parse(&response).expect("error responses are valid JSON");
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
            assert!(v.get("error").and_then(Json::as_str).is_some(), "{bad}");
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let server = test_server(1);
        let first = ok_json(&server, r#"{"op":"cut","theta":0.4}"#);
        let second = ok_json(&server, r#"{"op":"cut","theta":0.4}"#);
        assert_eq!(first, second);
        let stats = ok_json(&server, r#"{"op":"stats"}"#);
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_index), Some(1));
    }

    #[test]
    fn recluster_swaps_the_generation_and_clears_the_cache() {
        let server = test_server(2);
        assert_eq!(server.generation(), 1);
        let _ = ok_json(&server, r#"{"op":"cut","theta":0.4}"#);
        let admit = ok_json(&server, r#"{"op":"recluster"}"#);
        assert_eq!(admit.get("enqueued").and_then(Json::as_bool), Some(true));
        let generation = server.await_generation(2, 30_000);
        assert_eq!(generation, 2, "admission must complete and swap");
        // Same graph, same pipeline: the answer is identical, but it is
        // served by the new generation.
        let cut = ok_json(&server, r#"{"op":"cut","theta":0.4}"#);
        assert_eq!(cut.get("generation").and_then(Json::as_index), Some(2));
        let stats = ok_json(&server, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("swaps").and_then(Json::as_index), Some(1));
        assert_eq!(stats.get("admissions").and_then(Json::as_index), Some(1));
    }

    #[test]
    fn shutdown_op_signals_exit() {
        let server = test_server(1);
        let (response, shutdown) = server.handle_line(r#"{"op":"shutdown"}"#);
        assert!(shutdown);
        assert!(response.contains("\"bye\":true"));
    }

    #[test]
    fn metrics_exposition_covers_counters_histograms_and_gauges() {
        let server = test_server(1);
        let _ = ok_json(&server, r#"{"op":"cut","theta":0.3}"#);
        let text = server.metrics_text();
        for c in Counter::ALL {
            let family = format!("# TYPE linkclustd_{}_total counter", c.name());
            assert!(text.contains(&family), "missing counter family {}", c.name());
        }
        for kind in QueryKind::ALL {
            let count =
                format!("linkclustd_query_latency_seconds_count{{kind=\"{}\"}}", kind.name());
            assert!(text.contains(&count), "missing histogram for kind {}", kind.name());
        }
        assert!(text.contains("linkclustd_query_latency_seconds_count{kind=\"cut\"} 1"));
        assert!(
            text.contains("linkclustd_query_latency_seconds_bucket{kind=\"cut\",le=\"+Inf\"} 1")
        );
        for gauge in [
            "linkclustd_uptime_seconds",
            "linkclustd_rss_bytes",
            "linkclustd_cache_entries",
            "linkclustd_cache_hit_ratio",
            "linkclustd_pool_queue_depth",
            "linkclustd_index_generation",
        ] {
            assert!(text.contains(&format!("# TYPE {gauge} gauge")), "missing gauge {gauge}");
        }
        assert!(text.contains("linkclustd_index_generation 1"));
    }

    #[test]
    fn metrics_op_carries_the_exposition_over_the_line_protocol() {
        let server = test_server(1);
        let v = ok_json(&server, r#"{"op":"metrics"}"#);
        let exposition = v.get("exposition").and_then(Json::as_str).expect("exposition string");
        assert!(exposition.contains("# TYPE linkclustd_serve_queries_total counter"));
        assert!(exposition.ends_with('\n'), "exposition ends with a newline");
    }

    #[test]
    fn admission_lifecycle_is_logged_as_json_lines() {
        use linkclust_core::telemetry::LogLevel;
        let path =
            std::env::temp_dir().join(format!("linkclust-serve-log-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let logger = Logger::to_file(&path, LogLevel::Debug).expect("temp log file opens");
        let g = gnm(24, 60, WeightMode::Uniform { lo: 0.3, hi: 1.5 }, 11);
        let config = ServerConfig { threads: 2, cache_capacity: 64, logger };
        let server = Server::new(ServeGraph::Weighted(g), config).unwrap();
        let _ = ok_json(&server, r#"{"op":"recluster"}"#);
        assert_eq!(server.await_generation(2, 30_000), 2);
        let text = std::fs::read_to_string(&path).expect("log file readable");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"event\":\"admit_enqueued\""), "{text}");
        assert!(text.contains("\"event\":\"admit_swap\""), "{text}");
        assert!(text.contains("\"generation\":2"), "{text}");
        for line in text.lines() {
            let v = json::parse(line).expect("every log line is valid JSON");
            assert!(v.get("ts_ms").and_then(Json::as_index).is_some(), "{line}");
            assert!(v.get("level").and_then(Json::as_str).is_some(), "{line}");
        }
    }

    #[test]
    fn with_index_rejects_a_mismatched_graph() {
        let g1 = gnm(24, 60, WeightMode::Unit, 1);
        let g2 = gnm(24, 60, WeightMode::Unit, 2);
        let output = LinkClustering::new().run(&g1).unwrap().output().clone();
        let index = DendrogramIndex::build(&g1, &output).unwrap();
        let err =
            Server::with_index(ServeGraph::Weighted(g2), index.clone(), ServerConfig::default())
                .unwrap_err();
        assert!(matches!(err, IndexError::Corrupt { section: "endpoints", .. }));
        assert!(
            Server::with_index(ServeGraph::Weighted(g1), index, ServerConfig::default()).is_ok()
        );
    }

    #[test]
    fn serves_over_a_real_socket() {
        let server = std::sync::Arc::new(test_server(2));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Drive the accept loop from the pool so the test thread can be
        // the client.
        let background = std::sync::Arc::clone(&server);
        server.pool.submit(move || {
            let _ = background.serve(&listener);
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut ask = |line: &str| -> String {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };
        let cut = ask(r#"{"op":"cut","theta":0.3}"#);
        assert!(cut.contains("\"ok\":true"), "{cut}");
        let bye = ask(r#"{"op":"shutdown"}"#);
        assert!(bye.contains("\"bye\":true"), "{bye}");
    }
}
