//! Chunk-size estimation (§V-B, Fig. 3): how the coarse sweep predicts
//! the next chunk from the decay curve's slopes, and what rollback
//! reference points buy.
//!
//! ```text
//! cargo run --release --example chunk_estimation
//! ```

use linkclust::core::coarse::estimate::{estimate_chunk, CurvePoint};

fn pt(pairs: u64, clusters: usize) -> CurvePoint {
    CurvePoint { pairs, clusters }
}

fn main() {
    let gamma = 2.0;
    let gamma_tilde = (1.0 + gamma) / 2.0;
    println!("soundness bound gamma = {gamma}, target merge rate gamma~ = {gamma_tilde}\n");

    // A decay curve: clusters vs incident pairs processed.
    let history = vec![pt(0, 10_000), pt(1_000, 9_200), pt(3_000, 7_800), pt(7_000, 5_600)];
    println!("committed levels (pairs processed -> clusters):");
    for h in &history {
        println!("  {:>6} -> {:>6}", h.pairs, h.clusters);
    }

    // Concave scenario (Fig. 3(1)): a rolled-back overshoot gives a
    // *steeper* reference slope than the last two levels, so the
    // estimate shrinks — the safe choice.
    let overshoot = pt(10_000, 2_100);
    let without = estimate_chunk(None, &history, gamma_tilde).expect("slope exists");
    let with_ref = estimate_chunk(Some(overshoot), &history, gamma_tilde).expect("slope exists");
    println!(
        "\nconcave scenario: overshot rollback state at ({}, {})",
        overshoot.pairs, overshoot.clusters
    );
    println!("  next chunk from previous two levels only: {without} pairs");
    println!("  next chunk using the steeper reference:   {with_ref} pairs");
    assert!(with_ref < without);

    // Convex scenario (Fig. 3(2)): the reference is shallower, so the
    // previous-levels slope wins and the estimate is unchanged.
    let shallow = pt(12_000, 5_100);
    let convex = estimate_chunk(Some(shallow), &history, gamma_tilde).expect("slope exists");
    println!("\nconvex scenario: shallow reference at ({}, {})", shallow.pairs, shallow.clusters);
    println!("  estimate stays at the previous-levels slope: {convex} pairs");
    assert_eq!(convex, without);

    // The target: the next level should land near clusters/gamma~.
    let current = history.last().expect("non-empty");
    println!(
        "\ntarget for the next level: {} / {} = {:.0} clusters",
        current.clusters,
        gamma_tilde,
        current.clusters as f64 / gamma_tilde
    );
    println!(
        "(the estimate is deliberately conservative: the steeper slope predicts\n\
         fewer pairs than needed, so the soundness bound gamma is not overshot)"
    );
}
