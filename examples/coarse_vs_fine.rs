//! Coarse-grained vs fine-grained dendrograms (§V): same graph, both
//! sweeps, with the soundness property (merge rate ≤ γ) checked live and
//! the epoch telemetry printed.
//!
//! ```text
//! cargo run --release --example coarse_vs_fine
//! ```

use std::time::Instant;

use linkclust::graph::generate::{barabasi_albert, WeightMode};
use linkclust::{coarse_sweep, compute_similarities, sweep, CoarseConfig, SweepConfig};

fn main() {
    let g = barabasi_albert(2_000, 8, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 11);
    println!("graph: {} vertices, {} edges", g.vertex_count(), g.edge_count());

    let sims = compute_similarities(&g).into_sorted();
    let k2 = sims.incident_pair_count();
    println!("K1 = {} vertex pairs, K2 = {} incident edge pairs", sims.len(), k2);

    let start = Instant::now();
    let fine = sweep(&g, &sims, SweepConfig::default());
    let fine_time = start.elapsed();
    println!(
        "\nfine-grained:   {} merges, {} levels, {:?}",
        fine.dendrogram().merge_count(),
        fine.dendrogram().levels(),
        fine_time
    );

    let cfg = CoarseConfig {
        gamma: 2.0,
        phi: 100,
        initial_chunk: (k2 / 1000).max(16),
        ..Default::default()
    };
    let start = Instant::now();
    let coarse = coarse_sweep(&g, &sims, cfg);
    let coarse_time = start.elapsed();
    println!(
        "coarse-grained: {} merges, {} levels, {:?} ({}% of pairs processed)",
        coarse.dendrogram().merge_count(),
        coarse.dendrogram().levels(),
        coarse_time,
        (coarse.processed_fraction() * 100.0).round()
    );

    let b = coarse.epoch_breakdown();
    println!(
        "epochs: {} head/fresh, {} tail/fresh, {} rollback, {} reused",
        b.head_fresh, b.tail_fresh, b.rollback, b.reused
    );

    println!("\nlevel  pairs_processed  clusters  merge_rate");
    let mut prev = g.edge_count() as f64;
    for l in coarse.levels() {
        println!(
            "{:>5}  {:>15}  {:>8}  {:>9.3}",
            l.level,
            l.pairs,
            l.clusters,
            prev / l.clusters as f64
        );
        prev = l.clusters as f64;
    }

    let rate = coarse.max_unforced_merge_rate();
    println!(
        "\nsoundness: max merge rate across unforced levels = {rate:.3} (bound gamma = {})",
        cfg.gamma
    );
    assert!(rate <= cfg.gamma + 1e-9, "soundness property violated");
    println!("soundness property holds.");
}
