//! Community quality across the dendrogram: partition density (Ahn et
//! al.) level by level, comparing the sweep against both baselines on a
//! planted-community graph.
//!
//! ```text
//! cargo run --release --example community_quality
//! ```

use linkclust::graph::{GraphBuilder, WeightedGraph};
use linkclust::{partition_density, LinkClustering, MstClustering, NbmClustering};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a planted-partition graph: `k` cliques of `size` vertices with
/// strong internal weights plus sparse weak bridges.
fn planted(k: usize, size: usize, seed: u64) -> WeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(k * size);
    for c in 0..k {
        let base = c * size;
        for i in 0..size {
            for j in i + 1..size {
                b.add_edge(
                    linkclust::VertexId::new(base + i),
                    linkclust::VertexId::new(base + j),
                    rng.gen_range(0.8..1.2),
                )
                .expect("clique edges are valid");
            }
        }
    }
    // weak inter-community bridges
    for c in 0..k {
        let next = (c + 1) % k;
        let u = c * size + rng.gen_range(0..size);
        let v = next * size + rng.gen_range(0..size);
        let _ = b.add_edge(
            linkclust::VertexId::new(u),
            linkclust::VertexId::new(v),
            rng.gen_range(0.05..0.15),
        );
    }
    b.build()
}

fn main() {
    let k = 8;
    let size = 10;
    let g = planted(k, size, 3);
    println!("planted graph: {} communities x {} vertices, {} edges", k, size, g.edge_count());

    let result = LinkClustering::new().run(&g).unwrap();
    let d = result.dendrogram();

    println!("\npartition density along the dendrogram (every ~10th level):");
    let step = (d.levels() / 20).max(1);
    for level in (0..=d.levels()).step_by(step as usize) {
        let labels = result.output().edge_assignments_at_level(level);
        let density = partition_density(&g, &labels);
        let clusters = d.cluster_count_at_level(level);
        println!("  level {level:>4}: {clusters:>4} clusters, density {density:.4}");
    }

    let cut = d.best_density_cut(&g).expect("graph has edges");
    println!(
        "\nbest cut: level {} -> {} communities, density {:.4} (planted: {k})",
        cut.level, cut.cluster_count, cut.density
    );

    // Baselines find the same single-linkage structure.
    let sims = result.similarities();
    for (name, dend) in [
        ("standard NBM", NbmClustering::new().run(&g, sims)),
        ("MST/Kruskal", MstClustering::new().run(&g, sims)),
    ] {
        let best = dend.best_density_cut(&g).expect("graph has edges");
        println!(
            "{name:>13}: best cut density {:.4} with {} communities",
            best.density, best.cluster_count
        );
    }
}
