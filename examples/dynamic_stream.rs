//! Incremental link clustering over an evolving graph (extension beyond
//! the paper, see DESIGN.md): edges stream in (and occasionally drop
//! out); the Phase-I similarity state is maintained incrementally and a
//! full dendrogram is produced on demand — without recomputing map `M`
//! from scratch at every step.
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

use std::time::Instant;

use linkclust::core::incremental::IncrementalSimilarities;
use linkclust::graph::generate::{gnm, WeightMode};
use linkclust::{compute_similarities, sweep, SweepConfig, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    const N: usize = 600;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut inc = IncrementalSimilarities::new(N);

    // Stream in a random graph edge by edge, snapshotting periodically.
    let target = gnm(N, 6_000, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 3);
    println!("streaming {} edges into an incremental index...", target.edge_count());
    let mut since_snapshot = 0usize;
    let mut incremental_time = std::time::Duration::ZERO;
    for (i, (_, e)) in target.edges().enumerate() {
        let t = Instant::now();
        inc.add_edge(e.source, e.target, e.weight).expect("stream edges are valid");
        incremental_time += t.elapsed();
        since_snapshot += 1;

        // Occasionally delete a random present edge (graphs evolve both
        // ways).
        if rng.gen_bool(0.05) {
            let (a, b) = (rng.gen_range(0..N), rng.gen_range(0..N));
            if a != b {
                let t = Instant::now();
                let _ = inc.remove_edge(VertexId::new(a), VertexId::new(b));
                incremental_time += t.elapsed();
            }
        }

        if since_snapshot == 2_000 || i + 1 == target.edge_count() {
            since_snapshot = 0;
            let snap_start = Instant::now();
            let sims = inc.similarities().into_sorted();
            let g = inc.to_graph();
            let out = sweep(&g, &sims, SweepConfig::default());
            let snap_time = snap_start.elapsed();

            // Compare against a from-scratch Phase I on the same graph.
            let batch_start = Instant::now();
            let batch = compute_similarities(&g);
            let batch_time = batch_start.elapsed();

            println!(
                "after {:>5} edges: {:>6} pairs tracked, {:>4} clusters | snapshot+sweep {:>8.2?} \
                 (batch phase-1 alone: {:>8.2?})",
                g.edge_count(),
                sims.len(),
                out.dendrogram().final_cluster_count(),
                snap_time,
                batch_time
            );
            assert_eq!(sims.len(), batch.len(), "incremental state must match batch");
        }
    }
    println!(
        "\ntotal time spent on incremental updates: {incremental_time:?} \
         (amortized over {} operations)",
        target.edge_count()
    );
}
