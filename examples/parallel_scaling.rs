//! Multi-threading (§VI): run both phases with 1, 2, 4, and 6 threads on
//! one graph and print the speedup table of Fig. 6.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use std::time::Instant;

use linkclust::graph::generate::{barabasi_albert, WeightMode};
use linkclust::{
    compute_similarities, compute_similarities_parallel, parallel_coarse_sweep, CoarseConfig,
};

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let g = barabasi_albert(3_000, 10, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 5);
    println!(
        "graph: {} vertices, {} edges; machine has {} core(s)",
        g.vertex_count(),
        g.edge_count(),
        cores
    );

    let sims = compute_similarities(&g).into_sorted();
    let cfg = CoarseConfig {
        phi: 100,
        initial_chunk: (sims.incident_pair_count() / 1000).max(16),
        ..Default::default()
    };

    println!("\nphase          threads   time        speedup");
    let mut init_base = None;
    for threads in [1usize, 2, 4, 6] {
        let start = Instant::now();
        let par = compute_similarities_parallel(&g, threads);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(par.len(), sims.len(), "parallel init must match serial");
        let base = *init_base.get_or_insert(elapsed);
        println!("initialization  {threads:>6}   {elapsed:>8.4}s   {:>6.2}x", base / elapsed);
    }

    let mut sweep_base = None;
    let mut reference_levels = None;
    for threads in [1usize, 2, 4, 6] {
        let start = Instant::now();
        let r = parallel_coarse_sweep(&g, &sims, cfg, threads);
        let elapsed = start.elapsed().as_secs_f64();
        let levels: Vec<_> = r.levels().iter().map(|l| l.clusters).collect();
        match &reference_levels {
            None => reference_levels = Some(levels),
            Some(reference) => {
                assert_eq!(reference, &levels, "thread count must not change the trajectory");
            }
        }
        let base = *sweep_base.get_or_insert(elapsed);
        println!("coarse sweep    {threads:>6}   {elapsed:>8.4}s   {:>6.2}x", base / elapsed);
    }

    println!(
        "\n(the paper measures ~2.0x/3.5-4.0x/4.5-5.0x at 2/4/6 threads on a 6-core Xeon;\n\
         on {cores} core(s) speedups saturate at the hardware — correctness is asserted above)"
    );
}
