//! Quickstart: cluster the edges of a small graph and inspect the
//! dendrogram.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use linkclust::{GraphBuilder, LinkClustering};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two tight triangles joined by a weak bridge — the canonical
    // overlapping-community toy: vertex 2 and 3 belong to both sides,
    // but every *edge* belongs to exactly one community.
    let g = GraphBuilder::from_edges(
        6,
        &[
            (0, 1, 1.0),
            (1, 2, 1.0),
            (0, 2, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (3, 5, 1.0),
            (2, 3, 0.1),
        ],
    )?
    .build();

    let result = LinkClustering::new().run(&g).unwrap();

    println!("similarity list L ({} vertex pairs):", result.similarities().len());
    for e in result.similarities().entries() {
        println!("  {}  S = {:.4}  common: {:?}", e.pair, e.score, e.common_neighbors);
    }

    println!("\ndendrogram ({} merges):", result.dendrogram().merge_count());
    for m in result.dendrogram().merges() {
        println!("  level {:>2}: {} + {} -> {}", m.level, m.left, m.right, m.into);
    }

    let cut = result.dendrogram().best_density_cut(&g).expect("graph has edges");
    println!(
        "\nbest cut: level {} with partition density {:.3} ({} link communities)",
        cut.level, cut.density, cut.cluster_count
    );

    let labels = result.output().edge_assignments_at_level(cut.level);
    for (id, edge) in g.edges() {
        println!(
            "  edge {id} = ({}, {}) -> community {}",
            edge.source,
            edge.target,
            labels[id.index()]
        );
    }
    Ok(())
}
