//! The modeling contribution (§V, Fig. 2(2)): trace the cluster-count
//! decay of a fixed-chunk sweep, fit the four-parameter sigmoid, and
//! compare against the parameters the paper reports.
//!
//! ```text
//! cargo run --release --example sigmoid_model
//! ```

use linkclust::compute_similarities;
use linkclust::core::model::{normalize_curve, SigmoidModel};
use linkclust::core::sweep::{fixed_chunk_sweep, EdgeOrder};
use linkclust::graph::generate::{barabasi_albert, WeightMode};

fn main() {
    let g = barabasi_albert(1_500, 8, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 21);
    println!("graph: {} vertices, {} edges", g.vertex_count(), g.edge_count());

    let sims = compute_similarities(&g).into_sorted();
    let chunk = (sims.incident_pair_count() / 120).max(5);
    let trace = fixed_chunk_sweep(&g, &sims, chunk, EdgeOrder::Insertion);
    println!("fixed-chunk sweep: {} levels of ~{} incident pairs each", trace.levels.len(), chunk);

    let points: Vec<(u32, usize)> = trace.levels.iter().map(|l| (l.level, l.clusters)).collect();
    let norm = normalize_curve(&points);
    let fitted = SigmoidModel::fit(&norm);

    println!("\nfitted:  {fitted}");
    println!("paper:   {}", SigmoidModel::PAPER);
    println!("R^2 of fit: {:.4}", fitted.r_squared(&norm));

    println!("\nnormalized curve vs fit (every 10th level):");
    println!("  u       measured  fitted");
    for (u, y) in norm.iter().step_by(10) {
        println!("  {u:.3}   {y:.4}    {:.4}", fitted.eval(*u));
    }
}
