//! The paper's end-to-end workload (§III, §VII): raw tweets → text
//! pipeline (tokenize, stop-filter, Porter-stem) → PMI word association
//! network → link clustering → word communities.
//!
//! ```text
//! cargo run --release --example word_association
//! ```

use std::collections::HashMap;

use linkclust::corpus::synth::{SynthCorpus, SynthCorpusConfig};
use linkclust::{AssocNetworkBuilder, LinkClustering, TextPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic month of tweets (the paper's Dec-2011 corpus is
    //    proprietary; the generator reproduces its co-occurrence shape).
    let synth = SynthCorpus::generate(&SynthCorpusConfig {
        documents: 8_000,
        vocabulary: 1_200,
        topics: 10,
        seed: 20111201,
        ..Default::default()
    });
    let raw_tweets = synth.render_tweets(99);
    println!("corpus: {} raw tweets, e.g.:", raw_tweets.len());
    for t in raw_tweets.iter().take(3) {
        println!("  {t}");
    }

    // 2. The same preprocessing the paper runs through nltk.
    let pipeline = TextPipeline::new();
    let corpus = pipeline.process_all(&raw_tweets);

    // 3. Word association network over the most frequent words (Eq. 3).
    let net = AssocNetworkBuilder::new()
        .top_words(150)
        .min_document_count(3)
        .build(corpus.documents())?;
    let g = net.graph();
    println!(
        "\nassociation network: {} words, {} edges, density {:.3}",
        g.vertex_count(),
        g.edge_count(),
        g.density()
    );

    // 4. Link clustering + density-optimal cut.
    let result = LinkClustering::new().run(g).unwrap();
    let cut = result.dendrogram().best_density_cut(g).expect("non-empty graph");
    println!(
        "best cut: {} link communities at level {} (partition density {:.3})",
        cut.cluster_count, cut.level, cut.density
    );

    // 5. Report the largest communities as word groups.
    let labels = result.output().edge_assignments_at_level(cut.level);
    let mut communities: HashMap<u32, Vec<String>> = HashMap::new();
    for (id, edge) in g.edges() {
        let c = communities.entry(labels[id.index()]).or_default();
        for v in [edge.source, edge.target] {
            let w = net.word(v).to_owned();
            if !c.contains(&w) {
                c.push(w);
            }
        }
    }
    let mut sizes: Vec<(u32, usize)> = communities.iter().map(|(&l, ws)| (l, ws.len())).collect();
    sizes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\ntop communities (words may overlap between communities):");
    for (label, _) in sizes.iter().take(5) {
        let mut words = communities[label].clone();
        words.sort();
        words.truncate(12);
        println!("  [{}] {}", label, words.join(" "));
    }
    Ok(())
}
