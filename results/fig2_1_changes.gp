set datafile separator ','
set terminal pngcairo size 800,600
set output 'fig2_1_changes.png'
set title 'Fig. 2(1): changes on array C'
set xlabel 'Normalized level ID'
set ylabel 'Number of changes on array C'
set key outside
plot 'fig2_1_changes.csv' using 2:3 with linespoints title 'changes'
