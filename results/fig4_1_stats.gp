set datafile separator ','
set terminal pngcairo size 800,600
set output 'fig4_1_stats.png'
set title 'Fig. 4(1): statistics'
set xlabel 'Fraction'
set ylabel 'Count'
set key outside
set logscale x
set logscale y
plot 'fig4_1_stats.csv' using 1:3 with linespoints title 'Nodes', \
     'fig4_1_stats.csv' using 1:4 with linespoints title 'Edges', \
     'fig4_1_stats.csv' using 1:6 with linespoints title 'Vertex pairs', \
     'fig4_1_stats.csv' using 1:7 with linespoints title 'Edge pairs'
