set datafile separator ','
set terminal pngcairo size 800,600
set output 'fig4_2_time.png'
set title 'Fig. 4(2): execution time'
set xlabel 'Fraction'
set ylabel 'Execution time (sec)'
set key outside
set logscale x
set logscale y
plot 'fig4_2_time.csv' using 1:3 with linespoints title 'Initialization', \
     'fig4_2_time.csv' using 1:5 with linespoints title 'Standard', \
     'fig4_2_time.csv' using 1:4 with linespoints title 'Sweeping'
