set datafile separator ','
set terminal pngcairo size 800,600
set output 'fig4_3_memory.png'
set title 'Fig. 4(3): peak heap'
set xlabel 'Fraction'
set ylabel 'Peak heap (bytes)'
set key outside
set logscale x
set logscale y
plot 'fig4_3_memory.csv' using 1:3 with linespoints title 'Sweeping', \
     'fig4_3_memory.csv' using 1:5 with linespoints title 'Standard'
