set datafile separator ','
set terminal pngcairo size 800,600
set output 'fig5_2_coarse.png'
set title 'Fig. 5(2): coarse vs fine'
set xlabel 'Fraction'
set ylabel 'Execution time (sec)'
set key outside
set logscale x
set logscale y
plot 'fig5_2_coarse.csv' using 1:2 with linespoints title 'Coarse-grain, time', \
     'fig5_2_coarse.csv' using 1:3 with linespoints title 'Sweeping, time'
