set datafile separator ','
set terminal pngcairo size 800,600
set output 'fig6_1_init_speedup.png'
set title 'Fig. 6(1): initialization speedup'
set xlabel 'Number of threads'
set ylabel 'Speedup'
set key outside
plot 'fig6_1_init_speedup.csv' using 2:4 with linespoints title 'speedup'
