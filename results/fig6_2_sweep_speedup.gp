set datafile separator ','
set terminal pngcairo size 800,600
set output 'fig6_2_sweep_speedup.png'
set title 'Fig. 6(2): sweeping speedup'
set xlabel 'Number of threads'
set ylabel 'Speedup'
set key outside
plot 'fig6_2_sweep_speedup.csv' using 2:4 with linespoints title 'speedup'
