//! Post-hoc analysis of Chrome trace-event timelines.
//!
//! The tracing runtime (`linkclust::core::telemetry::trace`) exports
//! per-thread timelines of properly nested `ph: "X"` complete events.
//! This module loads such a document back and answers the questions a
//! perf investigation starts with:
//!
//! * **per-phase attribution** — total and *self* wall-clock per span
//!   name (self time subtracts nested children on the same thread, so a
//!   `sweep` containing `sweep_local` spans is not double-counted);
//! * **per-thread load** — busy time (top-level spans), utilization
//!   against the trace's wall span, and the max/mean imbalance ratio;
//! * **pool queue-wait share** — the fraction of total busy time spent
//!   in `pool_queue_wait` spans, i.e. workers starved for work;
//! * **a critical-path estimate** — for a barrier-synchronized
//!   fork-join run, the serial chain is bounded below by
//!   Σ over span names of the busiest thread's self time in that name;
//!   comparing it to the wall span shows how much of the timeline is
//!   explained by the dominant thread of each phase.
//!
//! The `linkclust-analyze` binary wraps this in a CLI with a
//! human-readable table and a `--json` document
//! (schema `linkclust-trace-analysis/v1`).

use std::collections::BTreeMap;

use linkclust_serve::json::{self, Json};

/// One `ph: "X"` complete event loaded from a trace document.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// The recording thread's trace id.
    pub tid: u32,
    /// Span name (a phase name or `pool_task`).
    pub name: String,
    /// Event category (`phase` or `pool`).
    pub cat: String,
    /// Start timestamp, microseconds.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

impl SpanEvent {
    fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// A loaded trace: spans, thread names, and the drop counter the
/// exporter embedded.
#[derive(Clone, Debug, Default)]
pub struct ParsedTrace {
    /// All complete events, in file order.
    pub spans: Vec<SpanEvent>,
    /// `thread_name` metadata records, as `(tid, name)`.
    pub thread_names: Vec<(u32, String)>,
    /// Events lost to ring-buffer overflow before export
    /// (`otherData.events_dropped`).
    pub events_dropped: u64,
}

/// Parses a Chrome trace-event JSON document (object form, as written
/// by `TraceCollector::to_chrome_json`).
///
/// # Errors
///
/// Returns a description of the first syntax or shape error; unknown
/// event kinds are skipped, not rejected.
pub fn parse_chrome_trace(text: &str) -> Result<ParsedTrace, String> {
    let doc = json::parse(text)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".to_owned());
    };
    let mut trace = ParsedTrace::default();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        let tid = match e.get("tid").and_then(Json::as_index) {
            Some(t) => u32::try_from(t).map_err(|_| format!("tid {t} out of range"))?,
            None => continue,
        };
        match ph {
            "M" if e.get("name").and_then(Json::as_str) == Some("thread_name") => {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned();
                trace.thread_names.push((tid, name));
            }
            "X" => {
                let name = e
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("complete event without a name")?
                    .to_owned();
                let cat = e.get("cat").and_then(Json::as_str).unwrap_or("").to_owned();
                let start_us =
                    e.get("ts").and_then(Json::as_f64).ok_or("complete event without ts")?;
                let dur_us =
                    e.get("dur").and_then(Json::as_f64).ok_or("complete event without dur")?;
                // float-cmp: exact sign check rejecting negative durations
                if !start_us.is_finite() || !dur_us.is_finite() || dur_us < 0.0 {
                    return Err(format!("non-finite or negative timing in span {name:?}"));
                }
                trace.spans.push(SpanEvent { tid, name, cat, start_us, dur_us });
            }
            _ => {}
        }
    }
    if let Some(dropped) =
        doc.get("otherData").and_then(|o| o.get("events_dropped")).and_then(Json::as_index)
    {
        trace.events_dropped = dropped;
    }
    Ok(trace)
}

/// Per-span-name attribution across the whole trace.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub calls: u64,
    /// Sum of span durations across all threads, microseconds.
    pub total_us: f64,
    /// Total minus time covered by nested children on the same thread.
    pub self_us: f64,
    /// The busiest single thread's self time in this name.
    pub max_thread_self_us: f64,
}

/// Per-thread load summary.
#[derive(Clone, Debug)]
pub struct ThreadRow {
    /// Trace thread id.
    pub tid: u32,
    /// Registered thread name (empty when the trace carries none).
    pub name: String,
    /// Time covered by top-level spans, microseconds.
    pub busy_us: f64,
    /// `busy_us` / wall span (0 for an empty trace).
    pub utilization: f64,
}

/// The full analysis of one trace. Produced by [`analyze`].
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Complete events analyzed.
    pub events: usize,
    /// Events lost before export (from the document's drop counter).
    pub events_dropped: u64,
    /// First span start → last span end, microseconds.
    pub wall_us: f64,
    /// Per-name attribution, sorted by self time, largest first.
    pub phases: Vec<PhaseRow>,
    /// Per-thread load, sorted by tid.
    pub threads: Vec<ThreadRow>,
    /// Busiest thread's busy time over the mean busy time (1.0 is a
    /// perfectly balanced run; 0 for an empty trace).
    pub imbalance: f64,
    /// Fraction of total busy time spent in `pool_queue_wait` spans.
    pub queue_wait_share: f64,
    /// Critical-path estimate: Σ over names of `max_thread_self_us`.
    pub critical_path_us: f64,
}

/// Analyzes a parsed trace. Relies on the exporter's guarantee that
/// per-thread spans are properly nested (enforced by the tracer's
/// debug invariants and `cargo xtask`'s trace checker).
#[must_use]
pub fn analyze(trace: &ParsedTrace) -> TraceAnalysis {
    let mut order: Vec<usize> = (0..trace.spans.len()).collect();
    order.sort_by(|&a, &b| {
        let (sa, sb) = (&trace.spans[a], &trace.spans[b]);
        sa.tid
            .cmp(&sb.tid)
            .then(sa.start_us.total_cmp(&sb.start_us))
            .then(sb.dur_us.total_cmp(&sa.dur_us))
    });

    let mut self_us = vec![0.0f64; trace.spans.len()];
    let mut busy_by_tid: BTreeMap<u32, f64> = BTreeMap::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut current_tid: Option<u32> = None;
    for &i in &order {
        let span = &trace.spans[i];
        if current_tid != Some(span.tid) {
            stack.clear();
            current_tid = Some(span.tid);
        }
        // Proper nesting: a span starting before the stack top ends is
        // contained in it; anything the top no longer covers is closed.
        while let Some(&top) = stack.last() {
            if span.start_us < trace.spans[top].end_us() {
                break;
            }
            stack.pop();
        }
        self_us[i] = span.dur_us;
        if let Some(&parent) = stack.last() {
            self_us[parent] -= span.dur_us;
        } else {
            *busy_by_tid.entry(span.tid).or_insert(0.0) += span.dur_us;
        }
        stack.push(i);
    }

    let mut by_name: BTreeMap<&str, PhaseRow> = BTreeMap::new();
    let mut by_name_tid: BTreeMap<(&str, u32), f64> = BTreeMap::new();
    for (i, span) in trace.spans.iter().enumerate() {
        let row = by_name.entry(&span.name).or_insert_with(|| PhaseRow {
            name: span.name.clone(),
            calls: 0,
            total_us: 0.0,
            self_us: 0.0,
            max_thread_self_us: 0.0,
        });
        row.calls += 1;
        row.total_us += span.dur_us;
        row.self_us += self_us[i];
        *by_name_tid.entry((&span.name, span.tid)).or_insert(0.0) += self_us[i];
    }
    for ((name, _), &t) in &by_name_tid {
        if let Some(row) = by_name.get_mut(name) {
            row.max_thread_self_us = row.max_thread_self_us.max(t);
        }
    }

    let wall_us = match (
        trace.spans.iter().map(|s| s.start_us).reduce(f64::min),
        trace.spans.iter().map(SpanEvent::end_us).reduce(f64::max),
    ) {
        (Some(lo), Some(hi)) => hi - lo,
        _ => 0.0,
    };

    let names: BTreeMap<u32, &str> =
        trace.thread_names.iter().map(|(tid, name)| (*tid, name.as_str())).collect();
    let mut tids: Vec<u32> = busy_by_tid.keys().copied().collect();
    tids.sort_unstable();
    let threads: Vec<ThreadRow> = tids
        .iter()
        .map(|&tid| {
            let busy_us = busy_by_tid[&tid];
            ThreadRow {
                tid,
                name: names.get(&tid).copied().unwrap_or("").to_owned(),
                busy_us,
                // float-cmp: exact divide-by-zero guard
                utilization: if wall_us > 0.0 { busy_us / wall_us } else { 0.0 },
            }
        })
        .collect();

    let total_busy: f64 = threads.iter().map(|t| t.busy_us).sum();
    let max_busy = threads.iter().map(|t| t.busy_us).fold(0.0f64, f64::max);
    #[allow(clippy::cast_precision_loss)] // thread counts are tiny
    let mean_busy = if threads.is_empty() { 0.0 } else { total_busy / threads.len() as f64 };
    // float-cmp: exact divide-by-zero guard
    let imbalance = if mean_busy > 0.0 { max_busy / mean_busy } else { 0.0 };

    let queue_wait_total = by_name.get("pool_queue_wait").map_or(0.0, |row| row.total_us);
    // float-cmp: exact divide-by-zero guard
    let queue_wait_share = if total_busy > 0.0 { queue_wait_total / total_busy } else { 0.0 };

    let critical_path_us = by_name.values().map(|row| row.max_thread_self_us).sum();

    let mut phases: Vec<PhaseRow> = by_name.into_values().collect();
    phases.sort_by(|a, b| b.self_us.total_cmp(&a.self_us));

    TraceAnalysis {
        events: trace.spans.len(),
        events_dropped: trace.events_dropped,
        wall_us,
        phases,
        threads,
        imbalance,
        queue_wait_share,
        critical_path_us,
    }
}

impl TraceAnalysis {
    /// Renders the analysis as one JSON object, schema
    /// `linkclust-trace-analysis/v1`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"linkclust-trace-analysis/v1\",\"events\":");
        out.push_str(&self.events.to_string());
        out.push_str(",\"events_dropped\":");
        out.push_str(&self.events_dropped.to_string());
        out.push_str(",\"wall_us\":");
        json::write_f64(&mut out, self.wall_us);
        out.push_str(",\"critical_path_us\":");
        json::write_f64(&mut out, self.critical_path_us);
        out.push_str(",\"imbalance\":");
        json::write_f64(&mut out, self.imbalance);
        out.push_str(",\"queue_wait_share\":");
        json::write_f64(&mut out, self.queue_wait_share);
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_escaped(&mut out, &p.name);
            out.push_str(",\"calls\":");
            out.push_str(&p.calls.to_string());
            out.push_str(",\"total_us\":");
            json::write_f64(&mut out, p.total_us);
            out.push_str(",\"self_us\":");
            json::write_f64(&mut out, p.self_us);
            out.push_str(",\"max_thread_self_us\":");
            json::write_f64(&mut out, p.max_thread_self_us);
            out.push('}');
        }
        out.push_str("],\"threads\":[");
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tid\":");
            out.push_str(&t.tid.to_string());
            out.push_str(",\"name\":");
            json::write_escaped(&mut out, &t.name);
            out.push_str(",\"busy_us\":");
            json::write_f64(&mut out, t.busy_us);
            out.push_str(",\"utilization\":");
            json::write_f64(&mut out, t.utilization);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for TraceAnalysis {
    /// The human-readable report `linkclust-analyze` prints.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace: {} events over {:.3} ms wall ({} dropped before export)",
            self.events,
            self.wall_us / 1e3,
            self.events_dropped
        )?;
        writeln!(
            f,
            "critical path (est.): {:.3} ms ({:.0}% of wall)",
            self.critical_path_us / 1e3,
            // float-cmp: exact divide-by-zero guard
            if self.wall_us > 0.0 { 100.0 * self.critical_path_us / self.wall_us } else { 0.0 }
        )?;
        writeln!(
            f,
            "load imbalance: {:.2}x (max/mean busy), pool queue-wait share: {:.1}%",
            self.imbalance,
            100.0 * self.queue_wait_share
        )?;
        writeln!(f, "threads:")?;
        for t in &self.threads {
            writeln!(
                f,
                "  tid {:>3} {:<24} busy {:>12.3} ms  ({:>5.1}% of wall)",
                t.tid,
                t.name,
                t.busy_us / 1e3,
                100.0 * t.utilization
            )?;
        }
        writeln!(f, "phases (self time, largest first):")?;
        for p in &self.phases {
            writeln!(
                f,
                "  {:<24} self {:>12.3} ms  total {:>12.3} ms  max-thread {:>12.3} ms  x{}",
                p.name,
                p.self_us / 1e3,
                p.total_us / 1e3,
                p.max_thread_self_us / 1e3,
                p.calls
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tid: u32, name: &str, start_us: f64, dur_us: f64) -> SpanEvent {
        SpanEvent { tid, name: name.to_owned(), cat: "phase".to_owned(), start_us, dur_us }
    }

    #[test]
    fn self_time_subtracts_nested_children_per_thread() {
        let trace = ParsedTrace {
            spans: vec![
                span(0, "sweep", 0.0, 100.0),
                span(0, "sweep_local", 10.0, 30.0),
                span(0, "sweep_local", 50.0, 20.0),
                span(1, "sweep_local", 0.0, 40.0),
            ],
            thread_names: vec![(0, "main".to_owned()), (1, "worker-0".to_owned())],
            events_dropped: 0,
        };
        let a = analyze(&trace);
        let sweep = a.phases.iter().find(|p| p.name == "sweep").unwrap();
        assert!((sweep.total_us - 100.0).abs() < 1e-9);
        assert!((sweep.self_us - 50.0).abs() < 1e-9, "children subtracted: {}", sweep.self_us);
        let local = a.phases.iter().find(|p| p.name == "sweep_local").unwrap();
        assert!((local.total_us - 90.0).abs() < 1e-9);
        assert!((local.self_us - 90.0).abs() < 1e-9, "leaves keep their time");
        // tid 0 spends 50 µs of self time in sweep_local, tid 1 spends 40.
        assert!((local.max_thread_self_us - 50.0).abs() < 1e-9);
        // Busy: tid 0 has one 100 µs top-level span, tid 1 one of 40 µs.
        assert!((a.threads[0].busy_us - 100.0).abs() < 1e-9);
        assert!((a.threads[1].busy_us - 40.0).abs() < 1e-9);
        assert!((a.imbalance - 100.0 / 70.0).abs() < 1e-9);
        assert!((a.wall_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn queue_wait_share_counts_only_wait_spans() {
        let trace = ParsedTrace {
            spans: vec![span(0, "chunk_process", 0.0, 60.0), span(1, "pool_queue_wait", 0.0, 40.0)],
            thread_names: vec![],
            events_dropped: 0,
        };
        let a = analyze(&trace);
        assert!((a.queue_wait_share - 0.4).abs() < 1e-9);
    }

    #[test]
    fn parses_the_exporters_document_shape() {
        let text = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}},
            {"name":"sweep","cat":"phase","ph":"X","pid":1,"tid":0,"ts":1.500,"dur":20.000},
            {"name":"pool_task","cat":"pool","ph":"X","pid":1,"tid":0,"ts":2.000,"dur":3.000,"args":{"seq":7}}
        ],"displayTimeUnit":"ms","otherData":{"events_dropped":5,"ring_capacity":4096}}"#;
        let trace = parse_chrome_trace(text).unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.thread_names, vec![(0, "main".to_owned())]);
        assert_eq!(trace.events_dropped, 5);
        let a = analyze(&trace);
        assert_eq!(a.events, 2);
        assert!((a.wall_us - 20.0).abs() < 1e-9);
        let sweep = a.phases.iter().find(|p| p.name == "sweep").unwrap();
        assert!((sweep.self_us - 17.0).abs() < 1e-9, "pool_task nested inside sweep");
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let a = analyze(&ParsedTrace::default());
        assert_eq!(a.events, 0);
        assert!(a.wall_us.abs() < f64::EPSILON);
        assert!(a.imbalance.abs() < f64::EPSILON);
        assert!(a.phases.is_empty() && a.threads.is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
        assert!(
            parse_chrome_trace(r#"{"traceEvents":[{"ph":"X","tid":0,"name":"x","ts":0}]}"#)
                .is_err(),
            "span without dur"
        );
    }
}
