//! `linkclust-analyze` — post-hoc analysis of exported trace timelines.
//!
//! ```text
//! linkclust-analyze <trace.json|-> [--json]
//! ```
//!
//! Loads a Chrome trace-event document written by `linkclust --trace`
//! (or any tool using `TraceCollector::to_chrome_json`) and reports
//! per-phase wall-clock attribution (total and self time), per-thread
//! load and imbalance, the pool queue-wait share, and a critical-path
//! estimate. `--json` emits the machine-readable document instead
//! (schema `linkclust-trace-analysis/v1`); see `linkclust::analyze`.

use std::io::Read as _;
use std::process::ExitCode;

use linkclust::analyze::{analyze, parse_chrome_trace};

fn usage() -> ExitCode {
    eprintln!("usage: linkclust-analyze <trace.json|-> [--json]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path = String::new();
    let mut as_json = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => as_json = true,
            "--help" | "-h" => return usage(),
            p if path.is_empty() => path = p.to_owned(),
            _ => return usage(),
        }
    }
    if path.is_empty() {
        return usage();
    }

    let text = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let trace = match parse_chrome_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = analyze(&trace);
    if analysis.events_dropped > 0 {
        eprintln!(
            "warning: {} events were dropped before export; attribution under-counts \
             the oldest spans",
            analysis.events_dropped
        );
    }
    if as_json {
        println!("{}", analysis.to_json());
    } else {
        print!("{analysis}");
    }
    ExitCode::SUCCESS
}
