//! `linkclust` — command-line link clustering.
//!
//! ```text
//! linkclust <edge-list-file> [options]
//!
//! options:
//!   --coarse               coarse-grained sweep (default: fine-grained)
//!   --gamma <f64>          soundness bound for --coarse       [2.0]
//!   --phi <usize>          terminal cluster count for --coarse [100]
//!   --threads <n>          parallel initialization + sweeping  [1]
//!   --threshold <f64>      stop merging below this similarity
//!   --cut best|final       which partition to report           [best]
//!   --output communities|newick|csv|labels                     [communities]
//!   --stats                graph stats + per-phase run report (stderr)
//!   --stats-json           run report as JSON (stderr, printed last)
//!   --trace <file>         write a Chrome trace-event JSON timeline
//!   --log <file|stderr>    structured JSON-lines log of run lifecycle
//! ```
//!
//! With both `--stats` and `--stats-json`, the human-readable report is
//! printed first and the JSON object last, separated by a blank line, so
//! the JSON can be extracted by taking the final stderr line. `--trace`
//! files open in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The edge-list format is one `u v [weight]` triple per line with `#`
//! comments (see `linkclust::graph::io`).

use std::io::Read as _;
use std::process::ExitCode;

use linkclust::core::export::{to_merge_csv, to_newick};
use linkclust::graph::io::read_edge_list;
use linkclust::{
    CoarseConfig, ConfigError, Dendrogram, LinkClustering, LinkCommunities, RunReport,
    WeightedGraph,
};

struct Options {
    path: String,
    coarse: bool,
    gamma: f64,
    phi: usize,
    threads: usize,
    threshold: Option<f64>,
    cut: Cut,
    output: Output,
    stats: bool,
    stats_json: bool,
    trace: Option<String>,
    log: Option<String>,
}

#[derive(PartialEq, Clone, Copy)]
enum Cut {
    Best,
    Final,
}

#[derive(PartialEq, Clone, Copy)]
enum Output {
    Communities,
    Newick,
    Csv,
    Labels,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: linkclust <edge-list-file|-> [--coarse] [--gamma G] [--phi P] \
         [--threads N] [--threshold T] [--cut best|final] [--stats] [--stats-json] \
         [--trace FILE] [--log FILE|stderr] [--output communities|newick|csv|labels]\n\
         \n\
         or:    linkclust generate <family> [seed]\n\
         families: gnm <n> <m> | complete <n> | kregular <n> <k> | \
         ba <n> <m> | planted <k> <size> <p_in> <p_out>\n\
         (writes an edge list to stdout, clusterable with `linkclust -`)"
    );
    ExitCode::FAILURE
}

/// Handles `linkclust generate <family> ...`: writes an edge list to
/// stdout. Returns `None` on malformed arguments.
fn run_generate(args: &[String]) -> Option<ExitCode> {
    use linkclust::graph::generate::{
        barabasi_albert, complete, gnm, k_regular, planted_partition, WeightMode,
    };
    let w = WeightMode::Uniform { lo: 0.5, hi: 1.5 };
    let num = |i: usize| -> Option<usize> { args.get(i)?.parse().ok() };
    let fnum = |i: usize| -> Option<f64> { args.get(i)?.parse().ok() };
    let family = args.first()?;
    let (g, fixed_args) = match family.as_str() {
        "gnm" => (gnm(num(1)?, num(2)?, w, 42), 3),
        "complete" => (complete(num(1)?, w, 42), 2),
        "kregular" => (k_regular(num(1)?, num(2)?, w, 42), 3),
        "ba" => (barabasi_albert(num(1)?, num(2)?, w, 42), 3),
        "planted" => (planted_partition(num(1)?, num(2)?, fnum(3)?, fnum(4)?, 42).graph, 5),
        _ => return None,
    };
    // optional trailing seed: regenerate with it
    let g = if let Some(seed) = args.get(fixed_args).and_then(|s| s.parse::<u64>().ok()) {
        match family.as_str() {
            "gnm" => gnm(num(1)?, num(2)?, w, seed),
            "complete" => complete(num(1)?, w, seed),
            "kregular" => k_regular(num(1)?, num(2)?, w, seed),
            "ba" => barabasi_albert(num(1)?, num(2)?, w, seed),
            "planted" => planted_partition(num(1)?, num(2)?, fnum(3)?, fnum(4)?, seed).graph,
            _ => unreachable!("family validated above"),
        }
    } else if args.len() > fixed_args {
        return None;
    } else {
        g
    };
    let stdout = std::io::stdout();
    if linkclust::graph::io::write_edge_list(&g, stdout.lock()).is_err() {
        return Some(ExitCode::FAILURE);
    }
    eprintln!("generated {} vertices, {} edges", g.vertex_count(), g.edge_count());
    Some(ExitCode::SUCCESS)
}

fn parse_args() -> Option<Options> {
    let mut opts = Options {
        path: String::new(),
        coarse: false,
        gamma: 2.0,
        phi: 100,
        threads: 1,
        threshold: None,
        cut: Cut::Best,
        output: Output::Communities,
        stats: false,
        stats_json: false,
        trace: None,
        log: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--coarse" => opts.coarse = true,
            "--stats" => opts.stats = true,
            "--stats-json" => opts.stats_json = true,
            "--gamma" => opts.gamma = args.next()?.parse().ok()?,
            "--phi" => opts.phi = args.next()?.parse().ok()?,
            "--threads" => opts.threads = args.next()?.parse().ok()?,
            "--threshold" => opts.threshold = Some(args.next()?.parse().ok()?),
            "--trace" => opts.trace = Some(args.next()?),
            "--log" => opts.log = Some(args.next()?),
            "--cut" => {
                opts.cut = match args.next()?.as_str() {
                    "best" => Cut::Best,
                    "final" => Cut::Final,
                    _ => return None,
                }
            }
            "--output" => {
                opts.output = match args.next()?.as_str() {
                    "communities" => Output::Communities,
                    "newick" => Output::Newick,
                    "csv" => Output::Csv,
                    "labels" => Output::Labels,
                    _ => return None,
                }
            }
            "--help" | "-h" => return None,
            p if opts.path.is_empty() => opts.path = p.to_owned(),
            _ => return None,
        }
    }
    if opts.path.is_empty() || opts.threads == 0 {
        return None;
    }
    Some(opts)
}

fn cluster(
    g: &WeightedGraph,
    opts: &Options,
) -> Result<(Dendrogram, Vec<u32>, Option<RunReport>), ConfigError> {
    let mut lc = LinkClustering::new().threads(opts.threads).stats(opts.stats || opts.stats_json);
    if let Some(path) = &opts.trace {
        lc = lc.trace(path);
    }
    if opts.coarse {
        let cfg = CoarseConfig {
            gamma: opts.gamma,
            phi: opts.phi.max(1),
            initial_chunk: 64,
            ..Default::default()
        };
        let r = lc.run_coarse(g, cfg)?;
        let labels = r.output().edge_assignments();
        let dendrogram = r.output().dendrogram().clone();
        Ok((dendrogram, labels, r.report().cloned()))
    } else {
        if let Some(t) = opts.threshold {
            lc = lc.min_similarity(t);
        }
        let r = lc.run(g)?;
        let labels = r.edge_assignments();
        let report = r.report().cloned();
        Ok((r.into_dendrogram(), labels, report))
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("generate") {
        return match run_generate(&argv[1..]) {
            Some(code) => code,
            None => usage(),
        };
    }
    let Some(opts) = parse_args() else {
        return usage();
    };

    let text = if opts.path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {}: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };
    let g = match read_edge_list(text.as_bytes()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "graph: {} vertices, {} edges, density {:.4}",
        g.vertex_count(),
        g.edge_count(),
        g.density()
    );
    if opts.stats {
        let s = linkclust::graph::stats::GraphStats::compute(&g);
        eprintln!(
            "stats: K1 = {} vertex pairs, K2 = {} incident edge pairs, K3 = {} edge pairs, \
             max degree {}, mean degree {:.2}",
            s.common_neighbor_pairs,
            s.incident_edge_pairs,
            s.distinct_edge_pairs,
            s.max_degree,
            s.mean_degree
        );
    }

    let logger = match &opts.log {
        Some(spec) => {
            match linkclust::core::telemetry::Logger::from_spec(
                spec,
                linkclust::core::telemetry::LogLevel::Info,
            ) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot open log sink {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => linkclust::core::telemetry::Logger::disabled(),
    };
    logger.info(
        "run_start",
        &[
            ("graph", (&opts.path).into()),
            ("vertices", g.vertex_count().into()),
            ("edges", g.edge_count().into()),
            ("threads", opts.threads.into()),
            ("coarse", opts.coarse.into()),
        ],
    );

    let run_started = std::time::Instant::now();
    let (dendrogram, final_labels, report) = match cluster(&g, &opts) {
        Ok(r) => r,
        Err(e) => {
            logger.error("run_failed", &[("error", (&e.to_string()).into())]);
            eprintln!("invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    logger.info(
        "run_done",
        &[
            ("seconds", run_started.elapsed().as_secs_f64().into()),
            ("levels", dendrogram.levels().into()),
        ],
    );
    if let Some(report) = &report {
        let dropped = report.counter(linkclust::core::telemetry::Counter::TraceEventsDropped);
        if dropped > 0 {
            logger.warn("trace_events_dropped", &[("dropped", dropped.into())]);
            eprintln!(
                "warning: {dropped} trace events were dropped by ring-buffer overflow; \
                 the exported timeline is missing its oldest events"
            );
        }
    }
    let labels = match opts.cut {
        Cut::Final => final_labels,
        Cut::Best => match dendrogram.best_density_cut(&g) {
            Some(cut) => {
                eprintln!(
                    "best cut: level {} of {}, partition density {:.4}, {} communities",
                    cut.level,
                    dendrogram.levels(),
                    cut.density,
                    cut.cluster_count
                );
                dendrogram.assignments_at_level(cut.level)
            }
            None => final_labels,
        },
    };
    if let Some(report) = &report {
        // The report goes after every other stderr line, and the JSON
        // object last of all (after a separating blank line), so scripts
        // can grab it by taking the final stderr line. The Display table
        // already ends with a newline.
        if opts.stats {
            eprint!("{report}");
        }
        if opts.stats && opts.stats_json {
            eprintln!();
        }
        if opts.stats_json {
            eprintln!("{}", report.to_json());
        }
    }

    match opts.output {
        Output::Newick => match to_newick(&dendrogram) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: newick export failed: {e}");
                std::process::exit(1);
            }
        },
        Output::Csv => print!("{}", to_merge_csv(&dendrogram)),
        Output::Labels => {
            for (i, l) in labels.iter().enumerate() {
                println!("{i} {l}");
            }
        }
        Output::Communities => {
            let comms = LinkCommunities::from_edge_labels(&g, &labels);
            println!("{} link communities:", comms.len());
            for (i, c) in comms.communities().iter().enumerate() {
                let verts: Vec<String> = c.vertices.iter().map(|v| v.index().to_string()).collect();
                println!(
                    "community {i}: {} edges, {} vertices (D_c = {:.3}): {}",
                    c.edge_count(),
                    c.vertex_count(),
                    c.link_density(),
                    verts.join(" ")
                );
            }
            let overlaps = comms.overlap_vertices();
            if !overlaps.is_empty() {
                let v: Vec<String> = overlaps.iter().map(|v| v.index().to_string()).collect();
                println!("overlap vertices: {}", v.join(" "));
            }
        }
    }
    ExitCode::SUCCESS
}
