//! `linkclustd` — the resident link-clustering daemon.
//!
//! ```text
//! linkclustd <graph-file|-> [options]
//!
//! options:
//!   --listen <addr>     TCP address to bind            [127.0.0.1:0]
//!   --threads <n>       clustering / admission threads [2]
//!   --csr               serve from the CSR backend (edge-list input only)
//!   --index <file>      load a serialized dendrogram index instead of
//!                       clustering at startup (validated against the graph)
//!   --save-index <file> write the startup index to <file> and continue
//!   --cache <n>         answer-cache capacity           [512]
//!   --stats-json <file> write the stats document there on shutdown
//!                       (default: stderr)
//!   --metrics-port <n>  serve plain-HTTP `GET /metrics` (Prometheus
//!                       text) on 127.0.0.1:<n> (0 picks a free port)
//!                       and run the runtime-gauge ticker
//!   --log <file|stderr> structured JSON-lines log for lifecycle events
//! ```
//!
//! The graph file is sniffed by magic: the binary graph format from
//! `linkclust::graph::binfmt` loads as CSR, anything else parses as a
//! `u v [weight]` edge list. Once the index is ready the daemon prints
//! `LISTENING <addr>` on stdout (the bound port, useful with `:0`),
//! then `METRICS <addr>` when `--metrics-port` is given, and serves
//! line-delimited JSON queries until a client sends
//! `{"op":"shutdown"}` — see `linkclust::serve::server` for the
//! protocol.

use std::io::{Read as _, Write as _};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use linkclust::core::telemetry::{LogLevel, Logger};
use linkclust::graph::binfmt::GraphFile;
use linkclust::graph::io::read_edge_list;
use linkclust::serve::{DendrogramIndex, ServeGraph, Server, ServerConfig};
use linkclust::CsrGraph;

struct Options {
    path: String,
    listen: String,
    threads: usize,
    csr: bool,
    index: Option<String>,
    save_index: Option<String>,
    cache: usize,
    stats_json: Option<String>,
    metrics_port: Option<u16>,
    log: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: linkclustd <graph-file|-> [--listen ADDR] [--threads N] [--csr] \
         [--index FILE] [--save-index FILE] [--cache N] [--stats-json FILE] \
         [--metrics-port N] [--log FILE|stderr]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let mut opts = Options {
        path: String::new(),
        listen: "127.0.0.1:0".to_owned(),
        threads: 2,
        csr: false,
        index: None,
        save_index: None,
        cache: 512,
        stats_json: None,
        metrics_port: None,
        log: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => opts.listen = args.next()?,
            "--threads" => opts.threads = args.next()?.parse().ok()?,
            "--csr" => opts.csr = true,
            "--index" => opts.index = Some(args.next()?),
            "--save-index" => opts.save_index = Some(args.next()?),
            "--cache" => opts.cache = args.next()?.parse().ok()?,
            "--stats-json" => opts.stats_json = Some(args.next()?),
            "--metrics-port" => opts.metrics_port = Some(args.next()?.parse().ok()?),
            "--log" => opts.log = Some(args.next()?),
            "--help" | "-h" => return None,
            p if opts.path.is_empty() => opts.path = p.to_owned(),
            _ => return None,
        }
    }
    if opts.path.is_empty() || opts.threads == 0 || opts.cache == 0 {
        return None;
    }
    Some(opts)
}

/// Loads the graph file, sniffing the binary-format magic.
fn load_graph(bytes: &[u8], csr: bool) -> Result<ServeGraph, String> {
    if bytes.starts_with(&linkclust::graph::binfmt::MAGIC) {
        let g: CsrGraph =
            GraphFile::read_streamed(bytes).map_err(|e| format!("binary graph: {e}"))?;
        return Ok(ServeGraph::Csr(g));
    }
    let g = read_edge_list(bytes).map_err(|e| format!("edge list: {e}"))?;
    if csr {
        Ok(ServeGraph::Csr(CsrGraph::from_weighted(&g)))
    } else {
        Ok(ServeGraph::Weighted(g))
    }
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else {
        return usage();
    };

    let bytes = if opts.path == "-" {
        let mut b = Vec::new();
        if std::io::stdin().read_to_end(&mut b).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::FAILURE;
        }
        b
    } else {
        match std::fs::read(&opts.path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {}: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };
    let graph = match load_graph(&bytes, opts.csr) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("graph: {} vertices, {} edges", graph.vertex_count(), graph.edge_count());

    let logger = match &opts.log {
        Some(spec) => match Logger::from_spec(spec, LogLevel::Info) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cannot open log sink {spec}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Logger::disabled(),
    };
    logger.info(
        "daemon_start",
        &[
            ("graph", (&opts.path).into()),
            ("vertices", graph.vertex_count().into()),
            ("edges", graph.edge_count().into()),
            ("threads", opts.threads.into()),
        ],
    );

    let config =
        ServerConfig { threads: opts.threads, cache_capacity: opts.cache, logger: logger.clone() };
    let server = match &opts.index {
        Some(path) => {
            let index = match std::fs::File::open(path).map_err(|e| e.to_string()).and_then(|f| {
                DendrogramIndex::read(std::io::BufReader::new(f)).map_err(|e| e.to_string())
            }) {
                Ok(index) => index,
                Err(e) => {
                    logger.error(
                        "index_load_failed",
                        &[("path", path.into()), ("error", (&e).into())],
                    );
                    eprintln!("cannot load index {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Server::with_index(graph, index, config) {
                Ok(s) => {
                    logger.info("index_loaded", &[("path", path.into())]);
                    s
                }
                Err(e) => {
                    let message = e.to_string();
                    logger.error(
                        "index_rejected",
                        &[("path", path.into()), ("error", (&message).into())],
                    );
                    eprintln!("index {path} does not describe this graph: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match Server::new(graph, config) {
            Ok(s) => s,
            Err(e) => {
                let message = e.to_string();
                logger.error("startup_clustering_failed", &[("error", (&message).into())]);
                eprintln!("startup clustering failed: {message}");
                return ExitCode::FAILURE;
            }
        },
    };

    if let Some(path) = &opts.save_index {
        let result = std::fs::File::create(path)
            .map_err(linkclust::serve::IndexError::Io)
            .and_then(|f| server.write_index(std::io::BufWriter::new(f)));
        if let Err(e) = result {
            eprintln!("cannot save index to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("index saved to {path}");
    }

    let server = Arc::new(server);

    let listener = match TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The first stdout line; load generators parse it to find the port.
    println!("LISTENING {addr}");

    // The metrics side-channel: a 1 s runtime-gauge ticker plus a plain
    // HTTP responder any Prometheus scraper can pull. Held until after
    // the serve loop so dropping them joins the service threads.
    let mut observers = Vec::new();
    if let Some(port) = opts.metrics_port {
        let metrics_listener = match TcpListener::bind(("127.0.0.1", port)) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cannot bind metrics port {port}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let metrics_addr = match metrics_listener.local_addr() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cannot resolve metrics address: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("METRICS {metrics_addr}");
        logger.info("metrics_listening", &[("addr", (&metrics_addr.to_string()).into())]);
        observers.push(linkclust::serve::spawn_ticker(Arc::clone(&server)));
        observers.push(linkclust::serve::spawn_http(metrics_listener, Arc::clone(&server)));
    }
    if std::io::stdout().flush().is_err() {
        return ExitCode::FAILURE;
    }

    if let Err(e) = server.serve(&listener) {
        eprintln!("serve loop failed: {e}");
        return ExitCode::FAILURE;
    }
    drop(observers);
    logger.info("daemon_stop", &[("uptime_seconds", server.uptime_seconds().into())]);

    let stats = server.stats_json();
    match &opts.stats_json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, stats + "\n") {
                eprintln!("cannot write stats to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => eprintln!("{stats}"),
    }
    ExitCode::SUCCESS
}
