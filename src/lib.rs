//! # linkclust — efficient link clustering on multi-core machines
//!
//! A faithful, production-quality Rust implementation of
//! *Improving Efficiency of Link Clustering on Multi-Core Machines*
//! (Guanhua Yan, ICDCS 2017), including every substrate its evaluation
//! depends on.
//!
//! Link clustering (Ahn, Bagrow & Lehmann, Nature 2010) groups the
//! **edges** of a graph by single-linkage hierarchical clustering under
//! the Tanimoto similarity of incident edges, revealing overlapping
//! communities. This workspace provides:
//!
//! * [`graph`] — the weighted undirected graph substrate, generators and
//!   the incidence statistics (K₁/K₂/K₃) the complexity analysis uses;
//! * [`corpus`] — a synthetic tweet corpus, a full text pipeline
//!   (tokenizer, Porter stemmer, stop words), and the PMI
//!   word-association-network builder of the paper's evaluation;
//! * [`core`] — the paper's contribution: the two-phase serial algorithm
//!   (initialization + sweeping), coarse-grained dendrograms with the
//!   head/tail/rollback mode machine, the sigmoid decay model, and the
//!   O(n²) baselines it is compared against;
//! * [`parallel`] — the multi-threaded initialization and sweeping of
//!   §VI;
//! * [`serve`] — the resident clustering service: a versioned
//!   serialized dendrogram index ([`serve::DendrogramIndex`]) and the
//!   `linkclustd` query server with cached answers and batch-admission
//!   reclustering ([`serve::Server`]).
//!
//! The most common entry points are re-exported at the crate root; the
//! main one is the unified [`LinkClustering`] facade — serial by
//! default, parallel via [`threads`](LinkClustering::threads), with
//! phase-level telemetry via [`stats`](LinkClustering::stats) and
//! per-thread event tracing (Chrome trace-event JSON, viewable in
//! Perfetto) via [`trace`](LinkClustering::trace).
//!
//! # Quickstart
//!
//! ```
//! use linkclust::{GraphBuilder, LinkClustering};
//!
//! // Two unit triangles joined by a weak bridge.
//! let g = GraphBuilder::from_edges(6, &[
//!     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
//!     (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
//!     (2, 3, 0.1),
//! ])?.build();
//!
//! let result = LinkClustering::new().run(&g)?;
//! let cut = result.dendrogram().best_density_cut(&g).unwrap();
//! let labels = result.output().edge_assignments_at_level(cut.level);
//!
//! // The two triangles come out as two link communities.
//! assert_eq!(labels[0], labels[1]);
//! assert_eq!(labels[3], labels[4]);
//! assert_ne!(labels[0], labels[3]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Scaling out and measuring where the time goes:
//!
//! ```
//! use linkclust::graph::generate::{gnm, WeightMode};
//! use linkclust::core::telemetry::Phase;
//! use linkclust::LinkClustering;
//!
//! let g = gnm(200, 800, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 7);
//! let result = LinkClustering::new().threads(4).stats(true).run(&g)?;
//! let report = result.report().expect("stats(true) attaches a report");
//! assert!(report.phase_nanos(Phase::Sweep) > 0);
//! println!("{report}");          // per-phase table with p50/p99 latencies
//! let _json = report.to_json();  // machine-readable
//! # Ok::<(), linkclust::ConfigError>(())
//! ```
//!
//! For a wall-time view of where every thread spent the run, attach a
//! tracer (or write a file directly with
//! [`trace`](LinkClustering::trace) and open it in
//! <https://ui.perfetto.dev>):
//!
//! ```
//! use std::sync::Arc;
//! use linkclust::graph::generate::{gnm, WeightMode};
//! use linkclust::{LinkClustering, TraceCollector};
//!
//! let g = gnm(120, 480, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 7);
//! let collector = Arc::new(TraceCollector::new());
//! LinkClustering::new().threads(2).tracer(Arc::clone(&collector)).run(&g)?;
//! assert!(!collector.events().is_empty());
//! let _chrome_json = collector.to_chrome_json();
//! # Ok::<(), linkclust::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;

pub use linkclust_core as core;
pub use linkclust_corpus as corpus;
pub use linkclust_graph as graph;
pub use linkclust_parallel as parallel;
pub use linkclust_serve as serve;

pub use linkclust_core::{
    baseline::{MstClustering, NbmClustering},
    coarse::{coarse_sweep, CoarseConfig, CoarseResult},
    communities::LinkCommunities,
    dendrogram::partition_density,
    init::compute_similarities,
    model::SigmoidModel,
    sweep::{sweep, EdgeOrder, SweepConfig},
    telemetry::{Recorder, RunReport, TraceCollector},
    ClusterArray, ClusteringResult, ConfigError, Dendrogram, MergeRecord, PairSimilarities,
};
pub use linkclust_corpus::{AssocNetwork, AssocNetworkBuilder, TextPipeline};
pub use linkclust_graph::{
    CsrGraph, EdgeId, EdgeIndex, GraphBuilder, GraphError, GraphView, VertexId, WeightedGraph,
};
#[allow(deprecated)]
pub use linkclust_parallel::ParallelLinkClustering;
pub use linkclust_parallel::{
    compute_similarities_parallel, parallel_coarse_sweep, LinkClustering,
};
