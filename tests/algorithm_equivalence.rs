//! Property tests: the optimized sweep, the O(n²) NBM baseline, the MST
//! baseline, and the brute-force reference all compute the same
//! single-linkage structure on arbitrary random graphs.

use linkclust::core::reference::{
    canonical_labels, single_linkage_at_threshold, tanimoto_similarity,
};
use linkclust::graph::generate::{gnm, WeightMode};
use linkclust::{
    compute_similarities, sweep, EdgeOrder, MstClustering, NbmClustering, SweepConfig,
    WeightedGraph,
};
use proptest::prelude::*;

/// Strategy: a random weighted graph with 3–24 vertices and a random
/// number of edges.
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (3usize..24, 0u64..1000, 1u64..4).prop_map(|(n, seed, density_divisor)| {
        let max = n * (n - 1) / 2;
        let m = max / density_divisor as usize;
        gnm(n, m, WeightMode::Uniform { lo: 0.1, hi: 3.0 }, seed)
    })
}

fn canon(labels: &[u32]) -> Vec<usize> {
    canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn similarity_scores_match_brute_force(g in arb_graph()) {
        let sims = compute_similarities(&g);
        for e in sims.entries() {
            let expected = tanimoto_similarity(&g, e.pair.first(), e.pair.second());
            prop_assert!((e.score - expected).abs() < 1e-9,
                "pair {} score {} vs brute-force {}", e.pair, e.score, expected);
        }
    }

    #[test]
    fn all_three_algorithms_agree_on_final_partition(g in arb_graph()) {
        let sims = compute_similarities(&g);
        let sorted = sims.clone().into_sorted();
        let sweep_labels = sweep(&g, &sorted, SweepConfig::default()).edge_assignments();
        let nbm_labels = NbmClustering::new().run(&g, &sims).final_assignments();
        let mst_labels = MstClustering::new().run(&g, &sims).final_assignments();
        prop_assert_eq!(canon(&sweep_labels), canon(&nbm_labels));
        prop_assert_eq!(canon(&nbm_labels), canon(&mst_labels));
    }

    #[test]
    fn threshold_cuts_match_brute_force(g in arb_graph(), theta in 0.05f64..0.95) {
        let sims = compute_similarities(&g);
        let sorted = sims.into_sorted();
        let out = sweep(&g, &sorted, SweepConfig {
            min_similarity: Some(theta),
            ..Default::default()
        });
        let expected = canonical_labels(&single_linkage_at_threshold(&g, theta));
        prop_assert_eq!(canon(&out.edge_assignments()), expected);
    }

    #[test]
    fn edge_permutation_does_not_change_partition(g in arb_graph(), seed in 0u64..100) {
        let sorted = compute_similarities(&g).into_sorted();
        let a = sweep(&g, &sorted, SweepConfig::default());
        let b = sweep(&g, &sorted, SweepConfig {
            edge_order: EdgeOrder::Shuffled { seed },
            ..Default::default()
        });
        prop_assert_eq!(canon(&a.edge_assignments()), canon(&b.edge_assignments()));
    }

    #[test]
    fn merge_count_equals_components_delta(g in arb_graph()) {
        // Each merge reduces the cluster count by one, so the number of
        // merges equals |E| minus the final number of clusters.
        let sorted = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sorted, SweepConfig::default());
        let labels = out.edge_assignments();
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(
            out.dendrogram().merge_count() as usize,
            g.edge_count() - distinct.len()
        );
        prop_assert_eq!(out.dendrogram().final_cluster_count(), distinct.len());
    }

    #[test]
    fn k_statistics_invariant(g in arb_graph()) {
        use linkclust::graph::stats::GraphStats;
        let s = GraphStats::compute(&g);
        prop_assert!(s.invariant_holds());
        let sims = compute_similarities(&g);
        prop_assert_eq!(sims.len() as u64, s.common_neighbor_pairs);
        prop_assert_eq!(sims.incident_pair_count(), s.incident_edge_pairs);
    }
}

#[test]
fn dendrogram_merge_similarities_non_increasing_for_sweep() {
    // The sweep processes L in non-increasing score order, so each
    // merge's generating similarity is non-increasing.
    for seed in 0..10 {
        let g = gnm(16, 40, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        let sorted = compute_similarities(&g).into_sorted();
        let scores: Vec<f64> = sorted.entries().iter().map(|e| e.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "L must be sorted (seed {seed})");
    }
}
