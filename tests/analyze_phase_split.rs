//! Acceptance test for the trace-analysis layer: `linkclust::analyze`
//! must reproduce the phase split of a traced run. Both the trace
//! spans and the run report's phase totals are fed by the same
//! telemetry spans, so for every phase large enough to measure, the
//! analyzer's per-name total must agree with the report's
//! `phase_nanos` within 5%.

use std::sync::Arc;

use linkclust::analyze::{analyze, parse_chrome_trace};
use linkclust::core::telemetry::{Phase, TraceCollector};
use linkclust::graph::generate::{gnm, WeightMode};
use linkclust::{CoarseConfig, LinkClustering};

#[test]
fn analyzer_reproduces_the_phase_split_within_five_percent() {
    let g = gnm(10_000, 50_000, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 42);
    let collector = Arc::new(TraceCollector::new());
    let trace_path =
        std::env::temp_dir().join(format!("linkclust-analyze-split-{}.json", std::process::id()));
    let cfg = CoarseConfig { phi: 200, initial_chunk: 64, ..Default::default() };

    let result = LinkClustering::new()
        .threads(4)
        .stats(true)
        .tracer(Arc::clone(&collector))
        .trace(&trace_path)
        .run_coarse(&g, cfg)
        .expect("traced 4-thread coarse run succeeds");
    let report = result.report().expect("stats(true) attaches a report");

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);
    let trace = parse_chrome_trace(&text).expect("the exporter's JSON parses back");
    assert_eq!(trace.events_dropped, 0, "drops would undercount the oldest spans");
    let analysis = analyze(&trace);
    assert!(analysis.events > 0 && analysis.wall_us > 0.0);

    // Phase split: analyzer total vs. report total, within 5% for every
    // *traced* phase big enough that timer granularity can't dominate
    // (1 ms). Phases fed to the report without a trace span (e.g.
    // pool_queue_wait, aggregated directly) have no timeline to check.
    let mut compared = 0;
    for phase in Phase::ALL {
        let Some(row) = analysis.phases.iter().find(|p| p.name == phase.name()) else {
            continue;
        };
        let report_us = report.phase_nanos(phase) as f64 / 1e3;
        let trace_us = row.total_us;
        if report_us < 1_000.0 && trace_us < 1_000.0 {
            continue;
        }
        let relative = (trace_us - report_us).abs() / report_us.max(1.0);
        assert!(
            relative <= 0.05,
            "{}: trace {trace_us:.1} µs vs report {report_us:.1} µs ({:.1}% off)",
            phase.name(),
            100.0 * relative
        );
        compared += 1;
    }
    assert!(compared >= 3, "at least a few phases are big enough to compare ({compared})");

    // Call counts agree exactly for a heavily traced phase.
    let chunk = analysis
        .phases
        .iter()
        .find(|p| p.name == Phase::ChunkProcess.name())
        .expect("chunk processing appears on the timeline");
    assert_eq!(chunk.calls, report.phase_calls(Phase::ChunkProcess));

    // Structural sanity of the derived measures.
    assert!(analysis.imbalance >= 1.0, "max/mean is at least 1 when any thread is busy");
    assert!((0.0..=1.0).contains(&analysis.queue_wait_share));
    assert!(analysis.critical_path_us > 0.0);
}
