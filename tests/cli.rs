//! Integration tests for the `linkclust` CLI binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const EDGES: &str = "\
0 1 1.0
0 2 1.0
1 2 1.0
3 4 1.0
3 5 1.0
4 5 1.0
2 3 0.05
";

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_linkclust"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary exists");
    // Ignore EPIPE: processes rejecting their arguments exit without
    // reading stdin.
    let _ = child.stdin.as_mut().expect("stdin piped").write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("process runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn communities_output() {
    let (stdout, stderr, ok) = run_cli(&["-"], EDGES);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("graph: 6 vertices, 7 edges"), "stderr: {stderr}");
    assert!(stdout.contains("link communities"), "stdout: {stdout}");
    assert!(stdout.contains("community 0: 3 edges"), "stdout: {stdout}");
    assert!(stdout.contains("overlap vertices"), "stdout: {stdout}");
}

#[test]
fn newick_output() {
    let (stdout, _, ok) = run_cli(&["-", "--output", "newick"], EDGES);
    assert!(ok);
    let line = stdout.trim();
    assert!(line.ends_with(';'));
    assert!(line.contains("e0"));
}

#[test]
fn labels_output_final_cut() {
    let (stdout, _, ok) = run_cli(&["-", "--output", "labels", "--cut", "final"], EDGES);
    assert!(ok);
    let lines: Vec<&str> = stdout.trim().lines().collect();
    assert_eq!(lines.len(), 7, "one label per edge: {stdout}");
    for (i, l) in lines.iter().enumerate() {
        assert!(l.starts_with(&format!("{i} ")), "line {l}");
    }
}

#[test]
fn csv_output() {
    let (stdout, _, ok) = run_cli(&["-", "--output", "csv"], EDGES);
    assert!(ok);
    assert!(stdout.starts_with("level,left,right,into\n"));
}

#[test]
fn coarse_and_threads_flags() {
    let (stdout, stderr, ok) = run_cli(&["-", "--coarse", "--phi", "2", "--threads", "2"], EDGES);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("link communities"));
}

#[test]
fn threshold_flag_limits_merging() {
    let (stdout, _, ok) =
        run_cli(&["-", "--threshold", "0.99", "--cut", "final", "--output", "labels"], EDGES);
    assert!(ok);
    // At threshold 0.99 almost nothing merges; most labels distinct.
    let labels: Vec<&str> =
        stdout.trim().lines().map(|l| l.split_whitespace().nth(1).unwrap()).collect();
    let distinct: std::collections::HashSet<&str> = labels.iter().copied().collect();
    assert!(distinct.len() >= 5, "labels: {labels:?}");
}

#[test]
fn stats_flag_prints_k_statistics() {
    let (_, stderr, ok) = run_cli(&["-", "--stats"], EDGES);
    assert!(ok);
    assert!(stderr.contains("K1 = "), "stderr: {stderr}");
    assert!(stderr.contains("K2 = "), "stderr: {stderr}");
}

#[test]
fn stats_json_is_last_and_separated_from_the_table() {
    let (_, stderr, ok) = run_cli(&["-", "--stats", "--stats-json"], EDGES);
    assert!(ok, "stderr: {stderr}");
    // The JSON object is the final stderr line, preceded by a blank
    // separator line so scripts can extract it without parsing the table.
    let lines: Vec<&str> = stderr.lines().collect();
    let last = lines.last().expect("stderr non-empty");
    assert!(last.starts_with('{') && last.ends_with('}'), "last line not JSON: {last}");
    assert_eq!(lines[lines.len() - 2], "", "no blank line before the JSON: {stderr}");
    linkclust::core::telemetry::trace::validate_json(last).expect("stats JSON must be parseable");
    // The human table appears before the JSON, never after.
    let table_pos = stderr.find("phase").expect("report table present");
    let json_pos = stderr.rfind(last).expect("json present");
    assert!(table_pos < json_pos, "table must precede JSON: {stderr}");
}

#[test]
fn stats_json_alone_is_a_single_json_line() {
    let (_, stderr, ok) = run_cli(&["-", "--stats-json"], EDGES);
    assert!(ok, "stderr: {stderr}");
    let json_lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(json_lines.len(), 1, "exactly one JSON line: {stderr}");
    linkclust::core::telemetry::trace::validate_json(json_lines[0])
        .expect("stats JSON must be parseable");
}

#[test]
fn trace_flag_writes_chrome_trace_json() {
    let path =
        std::env::temp_dir().join(format!("linkclust-cli-trace-{}.json", std::process::id()));
    let path_str = path.to_string_lossy().into_owned();
    let (_, stderr, ok) =
        run_cli(&["-", "--coarse", "--threads", "2", "--trace", &path_str], EDGES);
    assert!(ok, "stderr: {stderr}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    linkclust::core::telemetry::trace::validate_json(&text).expect("valid JSON");
    assert!(text.contains("\"traceEvents\""), "chrome trace envelope: {text}");
    assert!(text.contains("\"ph\":\"X\""), "complete events: {text}");
}

#[test]
fn trace_to_unwritable_path_fails_cleanly() {
    let (_, stderr, ok) =
        run_cli(&["-", "--trace", "/nonexistent-dir-for-cli-trace/t.json"], EDGES);
    assert!(!ok, "unwritable trace path must fail the run");
    assert!(stderr.contains("failed to write trace file"), "stderr: {stderr}");
}

#[test]
fn generate_produces_clusterable_edge_list() {
    let (stdout, stderr, ok) = run_cli(&["generate", "planted", "3", "5", "0.9", "0.02"], "");
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("generated 15 vertices"), "stderr: {stderr}");
    // Feed the generated list back into the clusterer.
    let (out2, err2, ok2) = run_cli(&["-"], &stdout);
    assert!(ok2, "stderr: {err2}");
    assert!(out2.contains("link communities"));
}

#[test]
fn generate_with_seed_is_deterministic() {
    let (a, _, ok_a) = run_cli(&["generate", "gnm", "10", "20", "7"], "");
    let (b, _, ok_b) = run_cli(&["generate", "gnm", "10", "20", "7"], "");
    let (c, _, ok_c) = run_cli(&["generate", "gnm", "10", "20", "8"], "");
    assert!(ok_a && ok_b && ok_c);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn generate_rejects_bad_families_and_params() {
    for bad in [
        vec!["generate"],
        vec!["generate", "nonsense", "5"],
        vec!["generate", "gnm", "10"],
        vec!["generate", "gnm", "10", "20", "seedless-extra", "x"],
    ] {
        let (_, _, ok) = run_cli(&bad, "");
        assert!(!ok, "{bad:?} should fail");
    }
}

#[test]
fn bad_usage_fails() {
    let (_, _, ok) = run_cli(&[], "");
    assert!(!ok);
    let (_, _, ok) = run_cli(&["-", "--output", "nonsense"], EDGES);
    assert!(!ok);
    let (_, stderr, ok) = run_cli(&["/nonexistent/file"], "");
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}
