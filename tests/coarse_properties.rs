//! Property tests for coarse-grained clustering (§V): soundness,
//! partition consistency, epoch accounting, and Theorem-2-style
//! work bounds on the cluster array.

use linkclust::core::reference::canonical_labels;
use linkclust::graph::generate::{barabasi_albert, gnm, WeightMode};
use linkclust::graph::stats::GraphStats;
use linkclust::{
    coarse_sweep, compute_similarities, sweep, CoarseConfig, SweepConfig, WeightedGraph,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (6usize..32, 0u64..500).prop_map(|(n, seed)| {
        let m = n * (n - 1) / 3;
        gnm(n, m, WeightMode::Uniform { lo: 0.1, hi: 2.5 }, seed)
    })
}

fn arb_config() -> impl Strategy<Value = CoarseConfig> {
    (1u64..40, 1.2f64..4.0, 1usize..12).prop_map(|(chunk, gamma, phi)| CoarseConfig {
        gamma,
        phi,
        initial_chunk: chunk,
        ..Default::default()
    })
}

fn canon(labels: &[u32]) -> Vec<usize> {
    canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn soundness_holds_outside_forced_epochs(g in arb_graph(), cfg in arb_config()) {
        let sims = compute_similarities(&g).into_sorted();
        let r = coarse_sweep(&g, &sims, cfg);
        let rate = r.max_unforced_merge_rate();
        prop_assert!(rate <= cfg.gamma + 1e-9, "rate {} > gamma {}", rate, cfg.gamma);
    }

    #[test]
    fn cluster_counts_monotone_and_consistent(g in arb_graph(), cfg in arb_config()) {
        let sims = compute_similarities(&g).into_sorted();
        let r = coarse_sweep(&g, &sims, cfg);
        let mut prev = g.edge_count();
        for l in r.levels() {
            prop_assert!(l.clusters <= prev, "cluster counts must not increase");
            prev = l.clusters;
        }
        if let Some(last) = r.levels().last() {
            prop_assert_eq!(r.dendrogram().final_cluster_count(), last.clusters);
        }
        prop_assert!(r.processed_fraction() <= 1.0 + 1e-12);
    }

    #[test]
    fn coarse_partition_is_a_fine_partition_prefix(g in arb_graph(), cfg in arb_config()) {
        // Cutting the fine dendrogram at the same merge count must give
        // the identical partition, whatever path the mode machine took.
        let sims = compute_similarities(&g).into_sorted();
        let coarse = coarse_sweep(&g, &sims, cfg);
        let fine = sweep(&g, &sims, SweepConfig::default());
        let merges = coarse.dendrogram().merge_count() as u32;
        prop_assert_eq!(
            canon(&coarse.output().edge_assignments()),
            canon(&fine.edge_assignments_at_level(merges))
        );
    }

    #[test]
    fn epoch_accounting_balances(g in arb_graph(), cfg in arb_config()) {
        let sims = compute_similarities(&g).into_sorted();
        let r = coarse_sweep(&g, &sims, cfg);
        let b = r.epoch_breakdown();
        prop_assert_eq!(b.head_fresh + b.tail_fresh + b.reused, r.levels().len());
        prop_assert_eq!(
            b.head_fresh + b.tail_fresh + b.reused + b.rollback,
            r.epochs().len()
        );
        // Committed epochs carry strictly increasing levels 1..=n.
        for (i, l) in r.levels().iter().enumerate() {
            prop_assert_eq!(l.level as usize, i + 1);
        }
    }

    #[test]
    fn phi_controls_termination(g in arb_graph()) {
        let sims = compute_similarities(&g).into_sorted();
        let strict = CoarseConfig { phi: 1, initial_chunk: 8, ..Default::default() };
        let loose = CoarseConfig { phi: g.edge_count().max(1), initial_chunk: 8, ..Default::default() };
        let r_strict = coarse_sweep(&g, &sims, strict);
        let r_loose = coarse_sweep(&g, &sims, loose);
        // A looser phi can only stop earlier (fewer pairs processed).
        prop_assert!(r_loose.processed_fraction() <= r_strict.processed_fraction() + 1e-12);
    }
}

#[test]
fn theorem2_change_bound_holds_empirically() {
    // Theorem 2 bounds the total work on array C by O(K2 + sqrt(K2)·|E|).
    // The sweep's change counter must respect that bound (with a small
    // constant) on structured and random graphs.
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    let graphs: Vec<WeightedGraph> = vec![
        gnm(60, 600, w, 1),
        gnm(100, 1500, w, 2),
        barabasi_albert(300, 5, w, 3),
        linkclust::graph::generate::k_regular(200, 10, w, 4),
        linkclust::graph::generate::complete(24, w, 5),
    ];
    for g in graphs {
        let s = GraphStats::compute(&g);
        let sims = compute_similarities(&g).into_sorted();
        // Re-run the sweep manually to read the change counter, using the
        // same O(1) edge lookups the real sweep uses.
        let index = linkclust::EdgeIndex::for_graph(&g);
        let mut c = linkclust::ClusterArray::new(g.edge_count());
        for entry in sims.entries() {
            let (vi, vj) = (entry.pair.first(), entry.pair.second());
            for &vk in &entry.common_neighbors {
                let e1 = index.edge_between(vi, vk).unwrap();
                let e2 = index.edge_between(vj, vk).unwrap();
                c.merge(e1.index(), e2.index());
            }
        }
        let k2 = s.incident_edge_pairs as f64;
        let bound = 4.0 * (k2 + k2.sqrt() * g.edge_count() as f64);
        assert!(
            (c.changes() as f64) <= bound,
            "changes {} exceed Theorem-2 bound {} on |V|={} |E|={}",
            c.changes(),
            bound,
            g.vertex_count(),
            g.edge_count()
        );
    }
}

#[test]
fn coarse_skips_tail_on_power_law_graph() {
    let g = barabasi_albert(400, 6, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 7);
    let sims = compute_similarities(&g).into_sorted();
    let cfg = CoarseConfig { phi: 60, initial_chunk: 32, ..Default::default() };
    let r = coarse_sweep(&g, &sims, cfg);
    assert!(r.dendrogram().final_cluster_count() <= cfg.phi);
    assert!(
        r.processed_fraction() < 1.0,
        "expected the tail to be skipped, processed {}",
        r.processed_fraction()
    );
}
