//! Recovery of planted communities: link clustering must reassemble the
//! intra-community edge sets of planted-partition graphs, measured with
//! the external metrics of `core::evaluate`.

use linkclust::core::evaluate::{adjusted_rand_index, normalized_mutual_information};
use linkclust::graph::generate::{planted_partition, PlantedPartition};
use linkclust::{CoarseConfig, LinkClustering, LinkCommunities};

/// Scores the recovered labels against the planted truth over
/// intra-community edges only (bridges have no well-defined community).
fn recovery_scores(planted: &PlantedPartition, labels: &[u32]) -> (f64, f64) {
    let mut truth = Vec::new();
    let mut found = Vec::new();
    for (i, &c) in planted.edge_community.iter().enumerate() {
        if c != PlantedPartition::BRIDGE {
            truth.push(c);
            found.push(labels[i]);
        }
    }
    (adjusted_rand_index(&truth, &found), normalized_mutual_information(&truth, &found))
}

#[test]
fn fine_sweep_recovers_planted_communities() {
    for seed in [1u64, 2, 3] {
        let planted = planted_partition(6, 10, 0.7, 0.004, seed);
        let g = &planted.graph;
        let result = LinkClustering::new().run(g).unwrap();
        let cut = result.dendrogram().best_density_cut(g).expect("graph has edges");
        let labels = result.output().edge_assignments_at_level(cut.level);
        let (ari, nmi) = recovery_scores(&planted, &labels);
        assert!(ari > 0.6, "ARI {ari} too low at seed {seed}");
        assert!(nmi > 0.7, "NMI {nmi} too low at seed {seed}");
    }
}

#[test]
fn coarse_sweep_recovers_planted_communities() {
    let planted = planted_partition(5, 10, 0.7, 0.004, 7);
    let g = &planted.graph;
    let cfg = CoarseConfig { gamma: 2.0, phi: 5, initial_chunk: 32, ..Default::default() };
    let r = LinkClustering::new().run_coarse(g, cfg).unwrap();
    // Use the best density cut of the coarse dendrogram.
    let cut = r.dendrogram().best_density_cut(g).expect("graph has edges");
    let labels = r.output().edge_assignments_at_level(cut.level);
    let (ari, nmi) = recovery_scores(&planted, &labels);
    assert!(ari > 0.5, "coarse ARI {ari} too low");
    assert!(nmi > 0.6, "coarse NMI {nmi} too low");
}

#[test]
fn parallel_recovery_matches_serial() {
    let planted = planted_partition(4, 9, 0.75, 0.006, 11);
    let g = &planted.graph;
    let cfg = CoarseConfig { phi: 4, initial_chunk: 16, ..Default::default() };
    let serial = LinkClustering::new().run_coarse(g, cfg).unwrap();
    let parallel = LinkClustering::new().threads(3).run_coarse(g, cfg).unwrap();
    let (s_ari, _) = recovery_scores(&planted, &serial.output().edge_assignments());
    let (p_ari, _) = recovery_scores(&planted, &parallel.output().edge_assignments());
    assert!((s_ari - p_ari).abs() < 1e-12, "serial {s_ari} vs parallel {p_ari}");
}

#[test]
fn link_communities_expose_bridge_overlap() {
    let planted = planted_partition(3, 8, 0.9, 0.01, 13);
    let g = &planted.graph;
    let result = LinkClustering::new().run(g).unwrap();
    let cut = result.dendrogram().best_density_cut(g).expect("graph has edges");
    let labels = result.output().edge_assignments_at_level(cut.level);
    let comms = LinkCommunities::from_edge_labels(g, &labels);
    // At least the planted number of communities are recovered (bridges
    // may form additional tiny ones).
    assert!(comms.len() >= 3, "found only {} communities", comms.len());
    // The largest three communities correspond to the planted groups.
    let big: Vec<usize> = comms.communities().iter().take(3).map(|c| c.vertex_count()).collect();
    for n in big {
        assert!(n >= 7, "planted community fragmented: {n} vertices");
    }
}
