//! Integration: the synthetic corpus reproduces the structural
//! properties of the paper's word-association workload (Fig. 4(1)), and
//! the text pipeline is lossless on rendered tweets.

use linkclust::corpus::synth::{SynthCorpus, SynthCorpusConfig};
use linkclust::graph::stats::GraphStats;
use linkclust::{AssocNetworkBuilder, TextPipeline};
use proptest::prelude::*;

fn corpus(seed: u64) -> SynthCorpus {
    SynthCorpus::generate(&SynthCorpusConfig {
        documents: 4_000,
        vocabulary: 800,
        topics: 10,
        seed,
        ..Default::default()
    })
}

#[test]
fn density_falls_as_vocabulary_grows() {
    // The paper's Fig. 4(1): density 1.0 -> 0.136 as alpha grows.
    let c = corpus(1);
    let mut last_density = f64::INFINITY;
    for &top in &[5usize, 25, 100, 400] {
        let net = AssocNetworkBuilder::new()
            .top_words(top)
            .min_document_count(2)
            .build(c.documents())
            .expect("non-empty corpus");
        let d = net.graph().density();
        assert!(
            d <= last_density + 0.05,
            "density should fall (or stay) as vocabulary grows: {d} after {last_density}"
        );
        last_density = d;
    }
}

#[test]
fn small_vocabulary_graph_is_near_complete() {
    let c = corpus(2);
    let net =
        AssocNetworkBuilder::new().top_words(6).build(c.documents()).expect("non-empty corpus");
    assert!(
        net.graph().density() > 0.9,
        "top words must be densely associated, got {}",
        net.graph().density()
    );
}

#[test]
fn k2_dominates_edge_count_on_large_vocabulary() {
    let c = corpus(3);
    let net = AssocNetworkBuilder::new()
        .top_words(400)
        .min_document_count(2)
        .build(c.documents())
        .expect("non-empty corpus");
    let s = GraphStats::compute(net.graph());
    assert!(
        s.incident_edge_pairs > 10 * s.edges as u64,
        "K2 = {} should dominate |E| = {}",
        s.incident_edge_pairs,
        s.edges
    );
}

#[test]
fn vertices_are_frequency_ranked() {
    let c = corpus(4);
    let net = AssocNetworkBuilder::new().top_words(50).build(c.documents()).expect("non-empty");
    let counts: Vec<u32> = (0..net.vocabulary_size())
        .map(|i| net.document_count(linkclust::VertexId::new(i)))
        .collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]), "vertex order must follow frequency");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rendered_tweets_always_roundtrip(seed in 0u64..500, render_seed in 0u64..500) {
        let sc = SynthCorpus::generate(&SynthCorpusConfig {
            documents: 40,
            vocabulary: 60,
            topics: 5,
            seed,
            ..Default::default()
        });
        let pipeline = TextPipeline::new();
        for (raw, original) in sc.render_tweets(render_seed).iter().zip(sc.documents()) {
            let doc = pipeline.process(raw);
            prop_assert_eq!(doc.tokens(), original.tokens(), "raw: {}", raw);
        }
    }

    #[test]
    fn pmi_edges_have_positive_weights(seed in 0u64..50) {
        let sc = SynthCorpus::generate(&SynthCorpusConfig {
            documents: 500,
            vocabulary: 120,
            topics: 6,
            seed,
            ..Default::default()
        });
        let net = AssocNetworkBuilder::new().top_words(40).build(sc.documents()).unwrap();
        for (_, e) in net.graph().edges() {
            prop_assert!(e.weight > 0.0 && e.weight.is_finite());
        }
    }
}
