//! Backend equivalence: the compact CSR graph must be indistinguishable
//! from the adjacency-list backend everywhere the pipeline reads a
//! graph. Both backends expose identical id-sorted neighbor slabs and
//! identical edge ids, so similarities, dendrograms, and coarse
//! trajectories must be **bit-identical** — not merely equal up to
//! floating-point noise — at every thread count. The binary on-disk
//! format must round-trip through both backends losslessly.

use linkclust::core::coarse::CoarseConfig;
use linkclust::graph::binfmt::{BinGraphError, GraphFile};
use linkclust::graph::generate::{barabasi_albert, gnm, lfr_like, WeightMode};
use linkclust::{compute_similarities, CsrGraph, EdgeId, GraphView, LinkClustering, WeightedGraph};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One workload per generator family of the scale ladder.
fn workloads() -> Vec<(&'static str, WeightedGraph)> {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    vec![
        ("gnm", gnm(60, 240, w, 7)),
        ("barabasi_albert", barabasi_albert(80, 4, w, 3)),
        ("lfr_like", lfr_like(120, 8, 0.2, 11).graph),
    ]
}

/// The two backends agree on every primitive accessor — the invariant
/// the bit-identity of the downstream arithmetic rests on.
#[test]
fn csr_view_is_structurally_identical() {
    for (name, g) in workloads() {
        let csr = CsrGraph::from_weighted(&g);
        assert_eq!(g.vertex_count(), csr.vertex_count(), "{name}");
        assert_eq!(g.edge_count(), csr.edge_count(), "{name}");
        for v in GraphView::vertices(&g) {
            assert_eq!(g.neighbors(v), csr.neighbors(v), "{name}: slab of {v:?}");
        }
        for e in 0..g.edge_count() {
            let e = EdgeId::new(e);
            assert_eq!(g.edge_endpoints(e), csr.edge_endpoints(e), "{name}");
            assert_eq!(g.edge_weight(e).to_bits(), csr.edge_weight(e).to_bits(), "{name}");
        }
    }
}

#[test]
fn csr_similarities_are_bit_identical_at_every_thread_count() {
    for (name, g) in workloads() {
        let csr = CsrGraph::from_weighted(&g);
        let oracle = compute_similarities(&g);
        for threads in THREADS {
            let facade = LinkClustering::new().threads(threads);
            let sims = facade.similarities(&csr).unwrap();
            let sorted = oracle.clone().into_sorted();
            assert_eq!(sims.len(), sorted.len(), "{name} t={threads}");
            for (a, b) in sorted.entries().iter().zip(sims.entries()) {
                assert_eq!(a.pair, b.pair, "{name} t={threads}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{name} t={threads}: CSR similarity diverged at {}",
                    a.pair
                );
            }
        }
    }
}

#[test]
fn csr_dendrograms_match_adjacency_at_every_thread_count() {
    for (name, g) in workloads() {
        let csr = CsrGraph::from_weighted(&g);
        let serial = LinkClustering::new().run(&g).unwrap();
        for threads in THREADS {
            let facade = LinkClustering::new().threads(threads);
            let adj = facade.run(&g).unwrap();
            let via_csr = facade.run(&csr).unwrap();
            assert_eq!(
                adj.dendrogram(),
                via_csr.dendrogram(),
                "{name} t={threads}: dendrogram diverged between backends"
            );
            assert_eq!(adj.edge_assignments(), via_csr.edge_assignments(), "{name} t={threads}");
            // And the parallel CSR run still equals the serial oracle.
            assert_eq!(serial.dendrogram(), via_csr.dendrogram(), "{name} t={threads} vs serial");
        }
    }
}

#[test]
fn csr_coarse_trajectory_matches_adjacency() {
    let cfg = CoarseConfig { phi: 5, initial_chunk: 8, ..Default::default() };
    for (name, g) in workloads() {
        let csr = CsrGraph::from_weighted(&g);
        for threads in THREADS {
            let facade = LinkClustering::new().threads(threads);
            let adj = facade.run_coarse(&g, cfg).unwrap();
            let via_csr = facade.run_coarse(&csr, cfg).unwrap();
            let al: Vec<_> = adj.levels().iter().map(|l| (l.level, l.clusters)).collect();
            let cl: Vec<_> = via_csr.levels().iter().map(|l| (l.level, l.clusters)).collect();
            assert_eq!(al, cl, "{name} t={threads}: coarse levels diverged");
            assert_eq!(
                adj.output().edge_assignments(),
                via_csr.output().edge_assignments(),
                "{name} t={threads}"
            );
        }
    }
}

#[test]
fn binary_format_round_trips_both_backends() {
    for (name, g) in workloads() {
        // Adjacency list → bytes → CSR.
        let mut bytes = Vec::new();
        GraphFile::write(&g, &mut bytes).unwrap();
        let back = GraphFile::read_streamed(bytes.as_slice()).unwrap();
        assert_eq!(back, CsrGraph::from_weighted(&g), "{name}: adjacency round trip");
        // CSR → bytes → CSR is byte-stable (same records, same order).
        let mut again = Vec::new();
        GraphFile::write(&back, &mut again).unwrap();
        assert_eq!(bytes, again, "{name}: CSR re-serialization must be byte-stable");
    }
}

#[test]
fn binary_format_rejects_damage() {
    let g = gnm(20, 50, WeightMode::Uniform { lo: 0.5, hi: 1.5 }, 1);
    let mut bytes = Vec::new();
    GraphFile::write(&g, &mut bytes).unwrap();
    // Truncation anywhere in the record stream is detected.
    let cut = bytes.len() - 7;
    assert!(matches!(
        GraphFile::read_streamed(&bytes[..cut]).unwrap_err(),
        BinGraphError::Truncated { .. } | BinGraphError::Io(_)
    ));
    // A corrupted magic number is rejected before any record is parsed.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        GraphFile::read_streamed(bad.as_slice()).unwrap_err(),
        BinGraphError::BadMagic
    ));
    // Trailing garbage after the declared edge count is rejected too.
    let mut long = bytes.clone();
    long.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        GraphFile::read_streamed(long.as_slice()).unwrap_err(),
        BinGraphError::TrailingData
    ));
}
