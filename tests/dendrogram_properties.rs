//! Property tests on dendrogram invariants: cuts are successive
//! coarsenings, exports are well-formed, and density bookkeeping is
//! exact.

use linkclust::core::export::{to_ascii_tree, to_newick};
use linkclust::graph::generate::{gnm, WeightMode};
use linkclust::{compute_similarities, partition_density, sweep, SweepConfig, WeightedGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..22, 0u64..400).prop_map(|(n, seed)| {
        let m = n * (n - 1) / 3;
        gnm(n, m, WeightMode::Uniform { lo: 0.1, hi: 2.5 }, seed)
    })
}

/// Does `coarse` merge every cluster of `fine` into a single label?
fn is_coarsening(fine: &[u32], coarse: &[u32]) -> bool {
    let mut map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    fine.iter().zip(coarse).all(|(&f, &c)| *map.entry(f).or_insert(c) == c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn successive_levels_are_coarsenings(g in arb_graph()) {
        let sims = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sims, SweepConfig::default());
        let d = out.dendrogram();
        let mut prev = d.assignments_at_level(0);
        for level in 1..=d.levels() {
            let cur = d.assignments_at_level(level);
            prop_assert!(is_coarsening(&prev, &cur), "level {level} splits a cluster");
            prev = cur;
        }
    }

    #[test]
    fn cluster_count_matches_distinct_labels(g in arb_graph()) {
        let sims = compute_similarities(&g).into_sorted();
        let d = sweep(&g, &sims, SweepConfig::default()).into_dendrogram();
        for level in [0, d.levels() / 2, d.levels()] {
            let labels = d.assignments_at_level(level);
            let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
            prop_assert_eq!(d.cluster_count_at_level(level), distinct.len());
        }
    }

    #[test]
    fn best_cut_density_is_maximal_over_levels(g in arb_graph()) {
        let sims = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sims, SweepConfig::default());
        let d = out.dendrogram();
        if g.edge_count() == 0 {
            return Ok(());
        }
        let cut = d.best_density_cut(&g).expect("non-empty");
        // No sampled level beats the chosen cut.
        for level in 0..=d.levels() {
            let density = partition_density(&g, &d.assignments_at_level(level));
            prop_assert!(
                density <= cut.density + 1e-9,
                "level {level} density {density} beats cut {}",
                cut.density
            );
        }
    }

    #[test]
    fn exports_are_well_formed(g in arb_graph()) {
        let sims = compute_similarities(&g).into_sorted();
        let d = sweep(&g, &sims, SweepConfig::default()).into_dendrogram();
        let newick = to_newick(&d).unwrap();
        prop_assert!(newick.ends_with(';'));
        let open = newick.chars().filter(|&c| c == '(').count();
        let close = newick.chars().filter(|&c| c == ')').count();
        prop_assert_eq!(open, close);
        let tree = to_ascii_tree(&d).unwrap();
        // Every leaf appears exactly once in the ASCII tree.
        let leaf_count = tree.lines().filter(|l| l.trim_start_matches(['|', '`', '-', ' ']).starts_with('e')).count();
        prop_assert_eq!(leaf_count, g.edge_count());
    }

    #[test]
    fn labels_use_minimum_edge_convention(g in arb_graph()) {
        // Theorem 1: the cluster id of edge i is min F(i) — i.e. each
        // label equals the smallest edge index in its cluster.
        let sims = compute_similarities(&g).into_sorted();
        let out = sweep(&g, &sims, SweepConfig::default());
        let labels = out.dendrogram().final_assignments();
        let mut min_of: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            let e = min_of.entry(l).or_insert(i as u32);
            *e = (*e).min(i as u32);
        }
        for (&label, &min_member) in &min_of {
            prop_assert_eq!(label, min_member);
        }
    }
}
