//! End-to-end integration: raw tweets → text pipeline → association
//! network → link clustering → communities, across all workspace crates.

use linkclust::corpus::synth::{SynthCorpus, SynthCorpusConfig};
use linkclust::{AssocNetworkBuilder, CoarseConfig, GraphBuilder, LinkClustering, TextPipeline};

fn small_corpus(seed: u64) -> SynthCorpus {
    SynthCorpus::generate(&SynthCorpusConfig {
        documents: 2_000,
        vocabulary: 400,
        topics: 8,
        seed,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_from_raw_text() {
    let synth = small_corpus(1);
    let tweets = synth.render_tweets(2);
    let corpus = TextPipeline::new().process_all(&tweets);
    let net = AssocNetworkBuilder::new()
        .top_words(60)
        .min_document_count(2)
        .build(corpus.documents())
        .expect("corpus is non-empty");
    let g = net.graph();
    assert!(g.edge_count() > 10, "association network should be non-trivial");

    let result = LinkClustering::new().run(g).unwrap();
    assert!(result.dendrogram().merge_count() > 0);
    let cut = result.dendrogram().best_density_cut(g).expect("graph has edges");
    assert!(cut.density > 0.0, "communities should beat singleton density");

    // Every edge gets a label; labels form a valid partition.
    let labels = result.edge_assignments();
    assert_eq!(labels.len(), g.edge_count());
}

#[test]
fn pipeline_on_processed_tokens_matches_raw_text_route() {
    // Building the network from the already-processed corpus must give
    // the same graph as going through rendered text + pipeline, because
    // the renderer's noise is perfectly filtered.
    let synth = small_corpus(3);
    let via_tokens =
        AssocNetworkBuilder::new().top_words(40).build(synth.documents()).expect("non-empty");
    let tweets = synth.render_tweets(7);
    let processed = TextPipeline::new().process_all(&tweets);
    let via_text =
        AssocNetworkBuilder::new().top_words(40).build(processed.documents()).expect("non-empty");
    assert_eq!(via_tokens.words(), via_text.words());
    assert_eq!(via_tokens.graph(), via_text.graph());
}

#[test]
fn serial_and_parallel_coarse_agree_end_to_end() {
    let synth = small_corpus(5);
    let net = AssocNetworkBuilder::new().top_words(50).build(synth.documents()).expect("non-empty");
    let g = net.into_graph();
    let cfg = CoarseConfig { phi: 10, initial_chunk: 32, ..Default::default() };

    let serial = LinkClustering::new().run_coarse(&g, cfg).unwrap();
    let parallel = LinkClustering::new().threads(4).run_coarse(&g, cfg).unwrap();

    let s: Vec<_> = serial.levels().iter().map(|l| (l.level, l.clusters)).collect();
    let p: Vec<_> = parallel.levels().iter().map(|l| (l.level, l.clusters)).collect();
    assert_eq!(s, p, "serial and parallel coarse trajectories must agree");
}

#[test]
fn facade_reexports_compose() {
    // The root crate's re-exports must be sufficient to express the
    // paper's whole workflow without reaching into sub-crates.
    let g = GraphBuilder::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        .expect("valid edges")
        .build();
    let sims = linkclust::compute_similarities(&g);
    let sorted = sims.clone().into_sorted();
    let fine = linkclust::sweep(&g, &sorted, linkclust::SweepConfig::default());
    let nbm = linkclust::NbmClustering::new().run(&g, &sims);
    let mst = linkclust::MstClustering::new().run(&g, &sims);
    assert_eq!(fine.dendrogram().merge_count(), nbm.merge_count());
    assert_eq!(nbm.merge_count(), mst.merge_count());
}

#[test]
fn overlapping_communities_share_vertices_not_edges() {
    // The signature property of link clustering (Ahn et al.): vertex 2
    // participates in both triangles, yet each *edge* has one community.
    let g = GraphBuilder::from_edges(
        5,
        &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 1.0)],
    )
    .expect("valid edges")
    .build();
    let result = LinkClustering::new().run(&g).unwrap();
    let cut = result.dendrogram().best_density_cut(&g).expect("graph has edges");
    let labels = result.output().edge_assignments_at_level(cut.level);
    assert_eq!(cut.cluster_count, 2);
    // Edges 0-2 form triangle A; 3-5 triangle B.
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[1], labels[2]);
    assert_eq!(labels[3], labels[4]);
    assert_eq!(labels[4], labels[5]);
    assert_ne!(labels[0], labels[3]);
}
