//! Exhaustive verification on *every* graph with up to 5 vertices:
//! the optimized sweep, both baselines, and the brute-force reference
//! must agree on all 2¹⁰ = 1,024 edge subsets (and all 2⁶ on 4
//! vertices with a different weight pattern). No sampling, no seeds —
//! total coverage of the small-graph space.

use linkclust::core::reference::{canonical_labels, single_linkage_at_threshold};
use linkclust::{
    compute_similarities, sweep, GraphBuilder, MstClustering, NbmClustering, SweepConfig,
    WeightedGraph,
};

fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            out.push((i, j));
        }
    }
    out
}

/// Builds the graph for a bitmask over the pair list, with weights
/// varying by pair index so similarity ties are broken.
fn graph_for_mask(n: usize, pairs: &[(usize, usize)], mask: u32, unit: bool) -> WeightedGraph {
    let mut b = GraphBuilder::with_vertices(n);
    for (k, &(i, j)) in pairs.iter().enumerate() {
        if mask & (1 << k) != 0 {
            let w = if unit { 1.0 } else { 0.5 + 0.25 * (k as f64) };
            b.add_edge(linkclust::VertexId::new(i), linkclust::VertexId::new(j), w)
                .expect("enumerated edges are valid");
        }
    }
    b.build()
}

fn canon(labels: &[u32]) -> Vec<usize> {
    canonical_labels(&labels.iter().map(|&x| x as usize).collect::<Vec<_>>())
}

#[test]
fn all_five_vertex_graphs_agree() {
    let n = 5;
    let pairs = all_pairs(n);
    for mask in 0u32..(1 << pairs.len()) {
        let g = graph_for_mask(n, &pairs, mask, false);
        let sims = compute_similarities(&g);
        let sorted = sims.clone().into_sorted();
        let sweep_labels = canon(&sweep(&g, &sorted, SweepConfig::default()).edge_assignments());
        let nbm_labels = canon(&NbmClustering::new().run(&g, &sims).final_assignments());
        let mst_labels = canon(&MstClustering::new().run(&g, &sims).final_assignments());
        assert_eq!(sweep_labels, nbm_labels, "mask {mask:#b}");
        assert_eq!(nbm_labels, mst_labels, "mask {mask:#b}");
    }
}

#[test]
fn all_four_vertex_graphs_match_brute_force_thresholds() {
    let n = 4;
    let pairs = all_pairs(n);
    for mask in 0u32..(1 << pairs.len()) {
        let g = graph_for_mask(n, &pairs, mask, false);
        let sims = compute_similarities(&g).into_sorted();
        for theta in [0.2, 0.5, 0.8] {
            let got = canon(
                &sweep(
                    &g,
                    &sims,
                    SweepConfig { min_similarity: Some(theta), ..Default::default() },
                )
                .edge_assignments(),
            );
            let expected = canonical_labels(&single_linkage_at_threshold(&g, theta));
            assert_eq!(got, expected, "mask {mask:#b} theta {theta}");
        }
    }
}

#[test]
fn all_unit_weight_five_vertex_graphs_agree() {
    // Unit weights maximize similarity ties — the hardest case for
    // ordering-sensitive bugs.
    let n = 5;
    let pairs = all_pairs(n);
    for mask in 0u32..(1 << pairs.len()) {
        let g = graph_for_mask(n, &pairs, mask, true);
        let sims = compute_similarities(&g);
        let sorted = sims.clone().into_sorted();
        let sweep_labels = canon(&sweep(&g, &sorted, SweepConfig::default()).edge_assignments());
        let nbm_labels = canon(&NbmClustering::new().run(&g, &sims).final_assignments());
        assert_eq!(sweep_labels, nbm_labels, "mask {mask:#b}");
    }
}

#[test]
fn k_statistics_invariant_holds_exhaustively() {
    use linkclust::graph::stats::GraphStats;
    let n = 5;
    let pairs = all_pairs(n);
    for mask in 0u32..(1 << pairs.len()) {
        let g = graph_for_mask(n, &pairs, mask, true);
        let s = GraphStats::compute(&g);
        assert!(s.invariant_holds(), "mask {mask:#b}: {s:?}");
        let sims = compute_similarities(&g);
        assert_eq!(sims.len() as u64, s.common_neighbor_pairs, "mask {mask:#b}");
        assert_eq!(sims.incident_pair_count(), s.incident_edge_pairs, "mask {mask:#b}");
    }
}
