//! Integration: serialization paths — edge-list I/O feeding the full
//! clustering stack, Newick/CSV dendrogram export, and overlapping
//! community extraction.

use linkclust::core::export::{to_merge_csv, to_newick};
use linkclust::graph::io::{read_edge_list, write_edge_list};
use linkclust::{LinkClustering, LinkCommunities, VertexId};

const KARATE_LIKE: &str = "\
# two 4-cliques joined by one weak bridge
0 1 1.0
0 2 1.0
0 3 1.0
1 2 1.0
1 3 1.0
2 3 1.0
4 5 1.0
4 6 1.0
4 7 1.0
5 6 1.0
5 7 1.0
6 7 1.0
3 4 0.05
";

#[test]
fn cluster_a_graph_read_from_disk_format() {
    let g = read_edge_list(KARATE_LIKE.as_bytes()).expect("well-formed edge list");
    assert_eq!(g.vertex_count(), 8);
    assert_eq!(g.edge_count(), 13);

    let result = LinkClustering::new().run(&g).unwrap();
    let cut = result.dendrogram().best_density_cut(&g).expect("graph has edges");
    let labels = result.output().edge_assignments_at_level(cut.level);
    let comms = LinkCommunities::from_edge_labels(&g, &labels);

    // The two cliques are recovered; the bridge is its own community.
    assert_eq!(comms.len(), 3);
    assert_eq!(comms.communities()[0].edge_count(), 6);
    assert_eq!(comms.communities()[1].edge_count(), 6);
    assert_eq!(comms.communities()[2].edge_count(), 1);
    // The bridge endpoints 3 and 4 overlap two communities each.
    assert_eq!(comms.overlap_vertices(), vec![VertexId::new(3), VertexId::new(4)]);
}

#[test]
fn edge_list_roundtrip_preserves_clustering() {
    let g = read_edge_list(KARATE_LIKE.as_bytes()).unwrap();
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let g2 = read_edge_list(buf.as_slice()).unwrap();
    let a = LinkClustering::new().run(&g).unwrap().edge_assignments();
    let b = LinkClustering::new().run(&g2).unwrap().edge_assignments();
    assert_eq!(a, b);
}

#[test]
fn newick_export_covers_every_edge() {
    let g = read_edge_list(KARATE_LIKE.as_bytes()).unwrap();
    let d = LinkClustering::new().run(&g).unwrap().into_dendrogram();
    let newick = to_newick(&d).unwrap();
    assert!(newick.ends_with(';'));
    for i in 0..g.edge_count() {
        assert!(newick.contains(&format!("e{i}")), "missing e{i} in {newick}");
    }
    let csv = to_merge_csv(&d);
    assert_eq!(csv.lines().count() as u64, d.merge_count() + 1);
}

#[test]
fn community_metrics_on_cliques() {
    let g = read_edge_list(KARATE_LIKE.as_bytes()).unwrap();
    let result = LinkClustering::new().run(&g).unwrap();
    let cut = result.dendrogram().best_density_cut(&g).unwrap();
    let labels = result.output().edge_assignments_at_level(cut.level);
    let comms = LinkCommunities::from_edge_labels(&g, &labels);
    for c in comms.communities().iter().take(2) {
        // K4 communities: m = 6, n = 4 -> D_c = (6-3)/(2*3/2) = 1.0
        assert!((c.link_density() - 1.0).abs() < 1e-12);
    }
}
