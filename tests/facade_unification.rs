//! The unified facade contract: `threads(1)` is the exact serial
//! pipeline, bad configurations come back as [`ConfigError`] values
//! instead of panics, and the telemetry report's counters agree with
//! independently computed graph statistics and dendrogram totals.

use std::sync::Arc;

use linkclust::core::telemetry::{Counter, Phase, RunRecorder};
use linkclust::graph::generate::{gnm, planted_partition, WeightMode};
use linkclust::graph::stats::count_common_neighbor_pairs;
use linkclust::{CoarseConfig, ConfigError, EdgeOrder, LinkClustering, WeightedGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (6usize..30, 0u64..500).prop_map(|(n, seed)| {
        let m = n * (n - 1) / 3;
        gnm(n, m, WeightMode::Uniform { lo: 0.1, hi: 2.5 }, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `threads(1)` must produce the same dendrogram as the serial core
    /// facade, edge assignment for edge assignment — not just the same
    /// partition up to relabeling.
    #[test]
    fn one_thread_is_the_serial_pipeline(g in arb_graph()) {
        let serial = linkclust::core::LinkClustering::new().run(&g);
        let unified = LinkClustering::new().threads(1).run(&g).unwrap();
        prop_assert_eq!(serial.edge_assignments(), unified.edge_assignments());
        prop_assert_eq!(serial.dendrogram(), unified.dendrogram());
    }

    /// The same holds under a non-default edge order and a similarity
    /// threshold.
    #[test]
    fn one_thread_matches_serial_with_options(g in arb_graph(), seed in 0u64..64) {
        let order = EdgeOrder::Shuffled { seed };
        let serial = linkclust::core::LinkClustering::new()
            .edge_order(order)
            .min_similarity(0.2)
            .run(&g);
        let unified = LinkClustering::new()
            .edge_order(order)
            .min_similarity(0.2)
            .run(&g)
            .unwrap();
        prop_assert_eq!(serial.edge_assignments(), unified.edge_assignments());
    }
}

#[test]
fn report_counters_match_graph_statistics() {
    for seed in [1u64, 5, 9] {
        let g = gnm(60, 400, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        for threads in [1usize, 4] {
            let r = LinkClustering::new().threads(threads).stats(true).run(&g).unwrap();
            let report = r.report().expect("stats(true) attaches a report");
            assert_eq!(
                report.counter(Counter::PairsK1),
                count_common_neighbor_pairs(&g),
                "seed {seed} threads {threads}"
            );
            assert_eq!(
                report.counter(Counter::IncidentPairsK2),
                r.similarities().incident_pair_count()
            );
            assert_eq!(report.counter(Counter::MergesApplied), r.dendrogram().merge_count());
            for phase in
                [Phase::InitPass1, Phase::InitPass2, Phase::InitPass3, Phase::Sort, Phase::Sweep]
            {
                assert_eq!(report.phase_calls(phase), 1, "{phase:?}");
            }
        }
    }
}

#[test]
fn coarse_report_counters_match_dendrogram() {
    let planted = planted_partition(5, 10, 0.7, 0.01, 3);
    let g = &planted.graph;
    let cfg = CoarseConfig { phi: 5, initial_chunk: 16, ..Default::default() };
    for threads in [1usize, 3] {
        let r = LinkClustering::new().threads(threads).stats(true).run_coarse(g, cfg).unwrap();
        let report = r.report().expect("report attached");
        assert_eq!(report.counter(Counter::MergesApplied), r.dendrogram().merge_count());
        assert_eq!(report.counter(Counter::LevelsCommitted), r.levels().len() as u64);
        let b = r.epoch_breakdown();
        assert_eq!(report.counter(Counter::EpochsCommitted), (b.head_fresh + b.tail_fresh) as u64);
        assert_eq!(report.counter(Counter::Rollbacks), b.rollback as u64);
    }
}

#[test]
fn bad_configurations_are_errors_not_panics() {
    let g = gnm(12, 30, WeightMode::Unit, 0);

    assert_eq!(LinkClustering::new().threads(0).run(&g).unwrap_err(), ConfigError::ZeroThreads);
    assert_eq!(
        LinkClustering::new()
            .run_coarse(&g, CoarseConfig { gamma: 0.5, ..Default::default() })
            .unwrap_err(),
        ConfigError::InvalidGamma(0.5)
    );
    assert_eq!(
        LinkClustering::new()
            .run_coarse(&g, CoarseConfig { phi: 0, ..Default::default() })
            .unwrap_err(),
        ConfigError::ZeroPhi
    );
    assert_eq!(
        LinkClustering::new()
            .run_coarse(&g, CoarseConfig { initial_chunk: 0, ..Default::default() })
            .unwrap_err(),
        ConfigError::ZeroChunk
    );
    // Conflicting explicit edge orders are rejected, not silently
    // overwritten.
    assert_eq!(
        LinkClustering::new()
            .edge_order(EdgeOrder::Shuffled { seed: 1 })
            .run_coarse(
                &g,
                CoarseConfig { edge_order: EdgeOrder::Shuffled { seed: 2 }, ..Default::default() },
            )
            .unwrap_err(),
        ConfigError::EdgeOrderConflict
    );
    // The builder validates too (NaN compares unequal to itself, so
    // match structurally).
    assert!(matches!(
        CoarseConfig::builder().gamma(f64::NAN).build(),
        Err(ConfigError::InvalidGamma(gamma)) if gamma.is_nan()
    ));

    #[allow(deprecated)]
    {
        assert_eq!(
            linkclust::ParallelLinkClustering::new(0).map(|p| p.threads()),
            Err(ConfigError::ZeroThreads)
        );
    }
}

#[test]
fn custom_recorder_and_stats_agree() {
    let g = gnm(40, 200, WeightMode::Uniform { lo: 0.3, hi: 1.7 }, 8);
    let sink = Arc::new(RunRecorder::new());
    let custom = LinkClustering::new().threads(2).recorder(sink.clone()).run(&g).unwrap();
    assert!(custom.report().is_none(), "custom sinks bypass the built-in report");
    let stats = LinkClustering::new().threads(2).stats(true).run(&g).unwrap();
    let report = stats.report().expect("report attached");
    // Deterministic counters agree between the two sinks.
    let from_custom = sink.report();
    for counter in [Counter::PairsK1, Counter::IncidentPairsK2, Counter::MergesApplied] {
        assert_eq!(from_custom.counter(counter), report.counter(counter), "{counter:?}");
    }
    // And the JSON rendering names every phase.
    let json = report.to_json();
    for key in ["init_pass1", "sort", "sweep", "pairs_k1", "merges_applied"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
