//! Property tests for the incremental Phase-I index: any sequence of
//! edge insertions and deletions must leave the index in exact agreement
//! with a batch recomputation on the resulting graph.

use linkclust::core::incremental::IncrementalSimilarities;
use linkclust::{compute_similarities, GraphView, VertexId};
use proptest::prelude::*;

/// An operation against the index.
#[derive(Clone, Debug)]
enum Op {
    Add(usize, usize, f64),
    Remove(usize, usize),
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..n, 0..n, 0.1f64..3.0, proptest::bool::ANY).prop_map(|(a, b, w, add)| {
            if add {
                Op::Add(a, b, w)
            } else {
                Op::Remove(a, b)
            }
        }),
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_op_sequence_matches_batch(ops in arb_ops(14)) {
        let n = 14;
        let mut inc = IncrementalSimilarities::new(n);
        for op in &ops {
            match *op {
                Op::Add(a, b, w) => {
                    let (u, v) = (VertexId::new(a), VertexId::new(b));
                    if a != b && inc.weight_between(u, v).is_none() {
                        inc.add_edge(u, v, w).expect("validated add");
                    }
                }
                Op::Remove(a, b) => {
                    let _ = inc.remove_edge(VertexId::new(a), VertexId::new(b));
                }
            }
        }
        let g = inc.to_graph();
        let batch = compute_similarities(&g);
        let snap = inc.similarities();
        prop_assert_eq!(snap.len(), batch.len());
        let mut be: Vec<_> = batch.entries().to_vec();
        be.sort_by_key(|e| e.pair);
        for (a, b) in snap.entries().iter().zip(&be) {
            prop_assert_eq!(a.pair, b.pair);
            prop_assert_eq!(&a.common_neighbors, &b.common_neighbors);
            // Bit-identical, not approximately equal: the incremental
            // recomputation replays the batch accumulation order.
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits(),
                "pair {} incremental {} batch {}", a.pair, a.score, b.score);
        }
        // And the graph the index claims to hold is consistent.
        prop_assert_eq!(g.edge_count(), inc.edge_count());
    }

    #[test]
    fn index_weight_lookup_matches_graph(ops in arb_ops(10)) {
        let n = 10;
        let mut inc = IncrementalSimilarities::new(n);
        for op in &ops {
            match *op {
                Op::Add(a, b, w) => {
                    let (u, v) = (VertexId::new(a), VertexId::new(b));
                    if a != b && inc.weight_between(u, v).is_none() {
                        inc.add_edge(u, v, w).expect("validated add");
                    }
                }
                Op::Remove(a, b) => {
                    let _ = inc.remove_edge(VertexId::new(a), VertexId::new(b));
                }
            }
        }
        let g = inc.to_graph();
        for i in 0..n {
            for j in i + 1..n {
                let (u, v) = (VertexId::new(i), VertexId::new(j));
                prop_assert_eq!(inc.weight_between(u, v), GraphView::weight_between(&g, u, v));
            }
        }
    }
}
