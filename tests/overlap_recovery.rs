//! The defining capability of link clustering (Ahn et al., §I of the
//! paper): recovering **overlapping** communities. Vertex-partitioning
//! methods cannot place a vertex in two communities; an edge partition
//! can. These tests plant overlapping cliques and verify the recovered
//! cover with the overlapping-NMI of Lancichinetti et al.

use linkclust::core::evaluate::overlapping_nmi;
use linkclust::graph::generate::overlapping_planted;
use linkclust::{LinkClustering, LinkCommunities};

/// Extracts the recovered vertex cover (one vertex set per link
/// community, ignoring trivial 1-edge communities).
fn recovered_cover(comms: &LinkCommunities) -> Vec<Vec<u32>> {
    comms
        .communities()
        .iter()
        .filter(|c| c.edge_count() > 1)
        .map(|c| c.vertices.iter().map(|v| v.index() as u32).collect())
        .collect()
}

#[test]
fn chain_of_overlapping_cliques_is_recovered() {
    let planted = overlapping_planted(4, 7, 2, 3);
    let g = &planted.graph;
    let result = LinkClustering::new().run(g).unwrap();
    let cut = result.dendrogram().best_density_cut(g).expect("graph has edges");
    let labels = result.output().edge_assignments_at_level(cut.level);
    let comms = LinkCommunities::from_edge_labels(g, &labels);

    let cover = recovered_cover(&comms);
    let nmi = overlapping_nmi(&planted.communities, &cover, g.vertex_count());
    assert!(nmi > 0.8, "overlapping NMI {nmi} too low; cover: {cover:?}");
}

#[test]
fn shared_vertices_are_reported_as_overlap() {
    let planted = overlapping_planted(3, 6, 1, 5);
    let g = &planted.graph;
    let result = LinkClustering::new().run(g).unwrap();
    let cut = result.dendrogram().best_density_cut(g).expect("graph has edges");
    let labels = result.output().edge_assignments_at_level(cut.level);
    let comms = LinkCommunities::from_edge_labels(g, &labels);

    // The two chain-junction vertices (5 and 10 for size 6, overlap 1)
    // must appear in the overlap set.
    let overlaps: std::collections::HashSet<usize> =
        comms.overlap_vertices().iter().map(|v| v.index()).collect();
    assert!(overlaps.contains(&5), "vertex 5 should overlap: {overlaps:?}");
    assert!(overlaps.contains(&10), "vertex 10 should overlap: {overlaps:?}");
}

#[test]
fn recovery_degrades_gracefully_with_mixing() {
    use linkclust::graph::generate::overlapping_planted_with_mixing;
    let score = |mu: f64| -> f64 {
        let planted = overlapping_planted_with_mixing(4, 8, 2, mu, 11);
        let g = &planted.graph;
        let result = LinkClustering::new().run(g).unwrap();
        let cut = result.dendrogram().best_density_cut(g).expect("graph has edges");
        let labels = result.output().edge_assignments_at_level(cut.level);
        let comms = LinkCommunities::from_edge_labels(g, &labels);
        overlapping_nmi(&planted.communities, &recovered_cover(&comms), g.vertex_count())
    };
    let clean = score(0.0);
    let noisy = score(0.5);
    assert!(clean > 0.8, "clean recovery should be strong: {clean}");
    assert!(
        noisy < clean,
        "heavy mixing must hurt recovery: mu=0.5 gives {noisy} vs clean {clean}"
    );
}

#[test]
fn overlap_nmi_beats_random_baseline() {
    let planted = overlapping_planted(4, 6, 2, 9);
    let g = &planted.graph;
    let result = LinkClustering::new().run(g).unwrap();
    let cut = result.dendrogram().best_density_cut(g).expect("graph has edges");
    let labels = result.output().edge_assignments_at_level(cut.level);
    let comms = LinkCommunities::from_edge_labels(g, &labels);
    let cover = recovered_cover(&comms);
    let recovered = overlapping_nmi(&planted.communities, &cover, g.vertex_count());

    // Random baseline: shuffle vertices into equally many, equally sized
    // groups.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    let mut verts: Vec<u32> = (0..g.vertex_count() as u32).collect();
    verts.shuffle(&mut rng);
    let k = planted.communities.len();
    let random_cover: Vec<Vec<u32>> =
        verts.chunks(g.vertex_count().div_ceil(k)).map(|c| c.to_vec()).collect();
    let random = overlapping_nmi(&planted.communities, &random_cover, g.vertex_count());

    assert!(recovered > random + 0.3, "recovered {recovered} should beat random {random} clearly");
}
