//! Property tests: the multi-threaded implementation computes exactly
//! the same results as the serial one, for any thread count.

use linkclust::core::coarse::coarse_sweep_with;
use linkclust::graph::generate::{gnm, WeightMode};
use linkclust::parallel::merge::{merge_cluster_arrays, merge_cluster_arrays_reference};
use linkclust::parallel::ParallelChunkProcessor;
use linkclust::{
    coarse_sweep, compute_similarities, compute_similarities_parallel, ClusterArray, CoarseConfig,
    WeightedGraph,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (6usize..28, 0u64..500).prop_map(|(n, seed)| {
        let m = n * (n - 1) / 3;
        gnm(n, m, WeightMode::Uniform { lo: 0.1, hi: 2.5 }, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_init_matches_serial(g in arb_graph(), threads in 1usize..8) {
        let serial = compute_similarities(&g);
        let parallel = compute_similarities_parallel(&g, threads);
        prop_assert_eq!(serial.len(), parallel.len());
        let mut se: Vec<_> = serial.entries().to_vec();
        let mut pe: Vec<_> = parallel.entries().to_vec();
        se.sort_by_key(|e| e.pair);
        pe.sort_by_key(|e| e.pair);
        for (a, b) in se.iter().zip(&pe) {
            prop_assert_eq!(a.pair, b.pair);
            prop_assert!((a.score - b.score).abs() < 1e-10);
            prop_assert_eq!(&a.common_neighbors, &b.common_neighbors);
        }
    }

    #[test]
    fn parallel_sweep_trajectory_matches_serial(
        g in arb_graph(),
        threads in 2usize..6,
        chunk in 2u64..32,
    ) {
        let sims = compute_similarities(&g).into_sorted();
        let cfg = CoarseConfig { phi: 2, initial_chunk: chunk, ..Default::default() };
        let serial = coarse_sweep(&g, &sims, cfg);
        let mut proc = ParallelChunkProcessor::new(threads).unwrap().min_entries_per_thread(1);
        let parallel = coarse_sweep_with(&g, &sims, cfg, &mut proc);
        prop_assert_eq!(serial.levels(), parallel.levels());
        // Same final partition (labels may be identical here because the
        // slot order matches).
        prop_assert_eq!(
            serial.output().edge_assignments(),
            parallel.output().edge_assignments()
        );
    }

    #[test]
    fn array_merge_scheme_computes_the_join(
        n in 2usize..40,
        ops_a in proptest::collection::vec((0usize..64, 0usize..64), 0..40),
        ops_b in proptest::collection::vec((0usize..64, 0usize..64), 0..40),
        ops_base in proptest::collection::vec((0usize..64, 0usize..64), 0..20),
    ) {
        let mut base = ClusterArray::new(n);
        for &(i, j) in &ops_base {
            base.merge(i % n, j % n);
        }
        let mut a = base.clone();
        for &(i, j) in &ops_a {
            a.merge(i % n, j % n);
        }
        let mut b = base.clone();
        for &(i, j) in &ops_b {
            b.merge(i % n, j % n);
        }
        let expected = merge_cluster_arrays_reference(&a, &b);
        let mut got = a.clone();
        merge_cluster_arrays(&mut got, &b);
        prop_assert_eq!(got.assignments(), expected.assignments());
        prop_assert_eq!(got.cluster_count(), expected.cluster_count());
        prop_assert_eq!(got.cluster_count(), got.count_roots());
    }
}

#[test]
fn thread_count_does_not_change_results_on_a_real_workload() {
    let g = gnm(60, 500, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 9);
    let sims = compute_similarities(&g).into_sorted();
    let cfg = CoarseConfig { phi: 5, initial_chunk: 16, ..Default::default() };
    let reference = coarse_sweep(&g, &sims, cfg);
    for threads in [1, 2, 3, 4, 6, 8] {
        let mut proc = ParallelChunkProcessor::new(threads).unwrap().min_entries_per_thread(1);
        let r = coarse_sweep_with(&g, &sims, cfg, &mut proc);
        assert_eq!(reference.levels(), r.levels(), "threads = {threads}");
        assert_eq!(
            reference.output().edge_assignments(),
            r.output().edge_assignments(),
            "threads = {threads}"
        );
    }
}
