//! Index/live equivalence: every query the serialized
//! [`DendrogramIndex`] answers must be **bit-identical** to the answer
//! computed from the live [`Dendrogram`] it froze — after a full
//! write→read round-trip, on both graph backends, including
//! [`best_cut`](DendrogramIndex::best_cut) tie-breaking. This is the
//! contract that lets `linkclustd` serve a reloaded index
//! interchangeably with a fresh clustering run.

use std::collections::{BTreeMap, BTreeSet};

use linkclust::core::dendrogram::DensityCut;
use linkclust::graph::generate::{barabasi_albert, gnm, lfr_like, WeightMode};
use linkclust::serve::{DendrogramIndex, TopCommunity};
use linkclust::{CsrGraph, EdgeId, GraphView, LinkClustering, WeightedGraph};
use proptest::prelude::*;

/// One workload per generator family of the scale ladder.
fn workloads() -> Vec<(&'static str, WeightedGraph)> {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    vec![
        ("gnm", gnm(60, 240, w, 7)),
        ("barabasi_albert", barabasi_albert(80, 4, w, 3)),
        ("lfr_like", lfr_like(120, 8, 0.2, 11).graph),
    ]
}

/// Clusters `g`, freezes the run into an index, round-trips it through
/// the serialized format, and returns the reloaded copy plus the live
/// sweep output it must agree with.
fn reloaded_index<G>(g: &G) -> (DendrogramIndex, linkclust::core::sweep::SweepOutput)
where
    G: GraphView + Clone + Send + Sync + 'static,
{
    let result = LinkClustering::new().threads(2).run(g).expect("valid config");
    let index = DendrogramIndex::build(g, result.output()).expect("pipeline output is coherent");
    let mut bytes = Vec::new();
    index.write(&mut bytes).expect("vec write cannot fail");
    let reloaded = DendrogramIndex::read(bytes.as_slice()).expect("own output must reload");
    assert_eq!(index, reloaded, "round-trip changed the index");
    (reloaded, result.output().clone())
}

/// The thresholds worth probing: every distinct merge score (the exact
/// tie boundaries of the `>=`-cut), plus points below, between, and
/// above the score range.
fn probe_thetas(output: &linkclust::core::sweep::SweepOutput) -> Vec<f64> {
    let mut thetas = vec![0.0, 0.5, 1.0, 2.0];
    let scores = output.merge_scores();
    for (i, &s) in scores.iter().enumerate().step_by(scores.len().max(1).div_ceil(12)) {
        thetas.push(s);
        if let Some(&next) = scores.get(i + 1) {
            thetas.push(f64::midpoint(s, next));
        }
    }
    thetas
}

/// Expected vertex membership, computed from live labels and the graph.
fn live_vertex_labels<G: GraphView + ?Sized>(g: &G, labels: &[u32], v: usize) -> Vec<u32> {
    let mut out: BTreeSet<u32> = BTreeSet::new();
    for (e, &label) in labels.iter().enumerate() {
        let (s, t) = g.edge_endpoints(EdgeId::new(e));
        if s.index() == v || t.index() == v {
            out.insert(label);
        }
    }
    out.into_iter().collect()
}

/// Expected top-k, computed from live labels and the graph: edge count
/// descending, label ascending.
fn live_top_communities<G: GraphView + ?Sized>(
    g: &G,
    labels: &[u32],
    k: usize,
) -> Vec<TopCommunity> {
    let mut edges_of: BTreeMap<u32, u64> = BTreeMap::new();
    let mut verts_of: BTreeMap<u32, BTreeSet<usize>> = BTreeMap::new();
    for (e, &label) in labels.iter().enumerate() {
        let (s, t) = g.edge_endpoints(EdgeId::new(e));
        *edges_of.entry(label).or_default() += 1;
        let set = verts_of.entry(label).or_default();
        set.insert(s.index());
        set.insert(t.index());
    }
    let mut out: Vec<TopCommunity> = edges_of
        .into_iter()
        .map(|(label, edge_count)| TopCommunity {
            label,
            edge_count,
            vertex_count: verts_of[&label].len() as u64,
        })
        .collect();
    out.sort_by(|a, b| b.edge_count.cmp(&a.edge_count).then_with(|| a.label.cmp(&b.label)));
    out.truncate(k);
    out
}

fn assert_cut_matches(name: &str, a: Option<DensityCut>, b: Option<DensityCut>) {
    match (a, b) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.level, y.level, "{name}: best-cut level diverged");
            assert_eq!(x.cluster_count, y.cluster_count, "{name}: best-cut cluster count");
            assert_eq!(x.density.to_bits(), y.density.to_bits(), "{name}: best-cut density");
        }
        (x, y) => panic!("{name}: best cuts disagree on existence: {x:?} vs {y:?}"),
    }
}

/// The full equivalence matrix for one backend.
fn check_backend<G>(name: &str, g: &G)
where
    G: GraphView + Clone + Send + Sync + 'static,
{
    let (index, output) = reloaded_index(g);
    let dendrogram = output.dendrogram();

    // Partition-density profile and the density-optimal cut (ties
    // resolved identically: the strict-`>` fold over the profile).
    let live_profile = dendrogram.density_profile(g);
    assert_eq!(index.profile().len(), live_profile.len(), "{name}: profile length");
    for (a, b) in index.profile().iter().zip(&live_profile) {
        assert_eq!(a.level, b.level, "{name}: profile level");
        assert_eq!(a.cluster_count, b.cluster_count, "{name}: profile cluster count");
        assert_eq!(a.density.to_bits(), b.density.to_bits(), "{name}: profile density");
    }
    assert_cut_matches(name, index.best_cut(), dendrogram.best_density_cut(g));

    for theta in probe_thetas(&output) {
        let live = output.edge_assignments_at_similarity(theta);
        assert_eq!(
            index.edge_labels_at_threshold(theta),
            live,
            "{name}: cut at theta={theta} diverged"
        );
        for (e, &label) in live.iter().enumerate() {
            assert_eq!(
                index.membership_of_edge(e, theta),
                Some(label),
                "{name}: edge {e} membership at theta={theta}"
            );
        }
        assert_eq!(index.membership_of_edge(g.edge_count(), theta), None, "{name}: oob edge");
        for v in 0..g.vertex_count() {
            assert_eq!(
                index.membership_of_vertex(v, theta),
                Some(live_vertex_labels(g, &live, v)),
                "{name}: vertex {v} membership at theta={theta}"
            );
        }
        assert_eq!(index.membership_of_vertex(g.vertex_count(), theta), None, "{name}: oob vertex");
        for k in [0, 1, 3, usize::MAX] {
            assert_eq!(
                index.top_communities(theta, k),
                live_top_communities(g, &live, k),
                "{name}: top-{k} at theta={theta}"
            );
        }
    }
}

#[test]
fn index_answers_match_live_on_the_adjacency_backend() {
    for (name, g) in workloads() {
        check_backend(name, &g);
    }
}

#[test]
fn index_answers_match_live_on_the_csr_backend() {
    for (name, g) in workloads() {
        check_backend(name, &CsrGraph::from_weighted(&g));
    }
}

/// The two backends freeze into the *same* index: serialization is
/// deterministic and backend-independent, byte for byte.
#[test]
fn serialized_bytes_are_identical_across_backends() {
    for (name, g) in workloads() {
        let (from_adj, _) = reloaded_index(&g);
        let (from_csr, _) = reloaded_index(&CsrGraph::from_weighted(&g));
        assert_eq!(from_adj, from_csr, "{name}: backends froze different indexes");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        from_adj.write(&mut a).expect("vec write");
        from_csr.write(&mut b).expect("vec write");
        assert_eq!(a, b, "{name}: serialized bytes diverged across backends");
    }
}

/// Every strict prefix of a valid index file is rejected with a typed
/// error — truncation can never panic or yield a half-read index.
#[test]
fn truncated_index_bytes_are_rejected_not_panicked() {
    let g = gnm(40, 120, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 13);
    let (index, _) = reloaded_index(&g);
    let mut bytes = Vec::new();
    index.write(&mut bytes).expect("vec write");
    for len in 0..bytes.len() {
        assert!(
            DendrogramIndex::read(&bytes[..len]).is_err(),
            "prefix of {len} bytes must not reload"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random G(n, m) workloads: the reloaded index answers the cut
    /// query identically to the live dendrogram at arbitrary thresholds.
    #[test]
    fn random_graphs_round_trip_and_agree(
        n in 8usize..48,
        extra in 0usize..80,
        seed in 0u64..1_000,
        theta in 0.0f64..1.5,
    ) {
        let m = (n - 1).min(n * (n - 1) / 2) + extra.min(n * (n - 1) / 2 - (n - 1));
        let g = gnm(n, m, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, seed);
        let (index, output) = reloaded_index(&g);
        let live = output.edge_assignments_at_similarity(theta);
        prop_assert_eq!(index.edge_labels_at_threshold(theta), live);
        let live_best = output.dendrogram().best_density_cut(&g);
        assert_cut_matches("random", index.best_cut(), live_best);
    }
}
