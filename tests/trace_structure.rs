//! Acceptance test for the event-tracing tentpole: a traced 4-thread
//! run on gnm(10 000, 50 000) must produce a Chrome trace-event JSON
//! file that loads in Perfetto — validated structurally here: events
//! monotone and properly nested (never partially overlapping) per tid,
//! every interval complete (the writer emits only `ph:"X"` events, so
//! there is no unmatched begin by construction), parseable JSON — and
//! the run report must expose p50/p90/p99 latencies for the pool
//! queue-wait and chunk-processing phases.

use std::sync::Arc;

use linkclust::core::telemetry::trace::{check_events, validate_json};
use linkclust::core::telemetry::{Phase, TraceCollector, TraceLabel};
use linkclust::graph::generate::{gnm, WeightMode};
use linkclust::{CoarseConfig, LinkClustering};

#[test]
fn traced_acceptance_run_produces_valid_chrome_trace_and_quantiles() {
    let g = gnm(10_000, 50_000, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 42);
    let collector = Arc::new(TraceCollector::new());
    let trace_path =
        std::env::temp_dir().join(format!("linkclust-trace-structure-{}.json", std::process::id()));
    let cfg = CoarseConfig { phi: 200, initial_chunk: 64, ..Default::default() };

    let result = LinkClustering::new()
        .threads(4)
        .stats(true)
        .tracer(Arc::clone(&collector))
        .trace(&trace_path)
        .run_coarse(&g, cfg)
        .expect("traced 4-thread coarse run succeeds");

    // --- the in-memory timeline ---
    let events = collector.events();
    assert!(!events.is_empty(), "a traced run records events");
    check_events(&events).expect("monotone, properly nested per tid");
    let tids: std::collections::HashSet<u32> = events.iter().map(|e| e.tid).collect();
    assert!(tids.len() >= 2, "phase spans plus ≥1 worker thread, got tids {tids:?}");
    assert!(
        events.iter().any(|e| matches!(e.label, TraceLabel::PoolTask { .. })),
        "pooled task executions appear on the timeline"
    );
    assert!(
        events.iter().any(|e| e.label == TraceLabel::Phase(Phase::ChunkProcess)),
        "chunk processing appears on the timeline"
    );

    // --- the artifact Perfetto loads ---
    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);
    validate_json(&json).expect("trace file is well-formed JSON");
    assert!(json.contains("\"traceEvents\""), "chrome trace envelope");
    assert!(json.contains("\"ph\":\"X\""), "complete events");
    assert!(json.contains("\"thread_name\""), "thread-name metadata");

    // --- the report's latency quantiles ---
    let report = result.report().expect("stats(true) attaches a report");
    for phase in [Phase::PoolQueueWait, Phase::ChunkProcess] {
        assert!(report.phase_calls(phase) > 0, "{phase:?} recorded");
        let (p50, p90, p99) = (
            report.phase_quantile_nanos(phase, 0.5),
            report.phase_quantile_nanos(phase, 0.9),
            report.phase_quantile_nanos(phase, 0.99),
        );
        assert!(p50 <= p90 && p90 <= p99, "{phase:?} quantiles ordered: {p50} {p90} {p99}");
        assert!(p99 > 0, "{phase:?} p99 must be positive");
        assert!(p99 <= report.phase_nanos(phase), "{phase:?} p99 bounded by the phase total");
    }

    // The quantiles surface in both renderings of the report.
    let json = report.to_json();
    assert!(json.contains("\"pool_queue_wait\""), "report JSON: {json}");
    assert!(json.contains("\"p99_nanos\""), "report JSON: {json}");
}
