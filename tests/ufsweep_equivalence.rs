//! Engine equivalence: the parallel union-find sweep engine must be
//! indistinguishable from the serial sweep oracle — the dendrogram
//! (levels, left/right/into labels), the per-merge scores (compared as
//! bits), and every downstream cut must be **identical**, not merely
//! equal up to relabeling, at every thread count and on every graph
//! backend. Plus linearizable-equivalence property tests for the
//! lock-free concurrent union-find the engine's boundary stitch runs on.

use std::sync::Arc;

use linkclust::core::unionfind::{ConcurrentUnionFind, UnionFind};
use linkclust::graph::generate::{barabasi_albert, gnm, lfr_like, WeightMode};
use linkclust::parallel::pool::{partition_ranges, Task, WorkerPool};
use linkclust::parallel::SweepEngine;
use linkclust::{CsrGraph, LinkClustering, WeightedGraph};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One workload per generator family of the scale ladder.
fn workloads() -> Vec<(&'static str, WeightedGraph)> {
    let w = WeightMode::Uniform { lo: 0.2, hi: 2.0 };
    vec![
        ("gnm", gnm(60, 240, w, 7)),
        ("barabasi_albert", barabasi_albert(80, 4, w, 3)),
        ("lfr_like", lfr_like(120, 8, 0.2, 11).graph),
    ]
}

#[test]
fn ufsweep_dendrogram_is_bit_identical_to_serial_at_every_thread_count() {
    for (name, g) in workloads() {
        let serial = LinkClustering::new().run(&g).unwrap();
        for threads in THREADS {
            // threads == 1 forces the engine explicitly (Auto would take
            // the serial path); >= 2 exercises the default dispatch.
            let facade = if threads == 1 {
                LinkClustering::new().sweep_engine(SweepEngine::UnionFind)
            } else {
                LinkClustering::new().threads(threads)
            };
            let par = facade.run(&g).unwrap();
            assert_eq!(
                serial.dendrogram(),
                par.dendrogram(),
                "{name} t={threads}: dendrogram diverged from the serial oracle"
            );
            let sb: Vec<u64> = serial.output().merge_scores().iter().map(|s| s.to_bits()).collect();
            let pb: Vec<u64> = par.output().merge_scores().iter().map(|s| s.to_bits()).collect();
            assert_eq!(sb, pb, "{name} t={threads}: merge scores diverged");
            assert_eq!(
                serial.output().slot_of_edge(),
                par.output().slot_of_edge(),
                "{name} t={threads}"
            );
        }
    }
}

#[test]
fn ufsweep_is_bit_identical_on_the_csr_backend() {
    for (name, g) in workloads() {
        let csr = CsrGraph::from_weighted(&g);
        let serial = LinkClustering::new().run(&g).unwrap();
        for threads in [2, 4] {
            let par = LinkClustering::new().threads(threads).run(&csr).unwrap();
            assert_eq!(serial.dendrogram(), par.dendrogram(), "{name} t={threads} via CSR");
        }
    }
}

/// Cut paths (`edge_assignments_at_similarity` and level cuts) must
/// behave identically on dendrograms from either engine — the
/// satellites' cross-engine cut-equivalence check, at several
/// thresholds, on all three ladder families.
#[test]
fn cuts_are_identical_across_engines_at_several_thresholds() {
    for (name, g) in workloads() {
        let serial = LinkClustering::new().run(&g).unwrap();
        let engines = [
            LinkClustering::new().threads(4).sweep_engine(SweepEngine::Serial),
            LinkClustering::new().threads(4), // Auto: the ufsweep engine
            LinkClustering::new().sweep_engine(SweepEngine::UnionFind),
        ];
        for (which, facade) in engines.iter().enumerate() {
            let par = facade.run(&g).unwrap();
            for theta in [0.2, 0.35, 0.5, 0.7, 0.9] {
                assert_eq!(
                    serial.output().edge_assignments_at_similarity(theta),
                    par.output().edge_assignments_at_similarity(theta),
                    "{name} engine #{which} theta {theta}"
                );
            }
            let levels = serial.dendrogram().merge_count();
            for level in [0, levels / 2, levels] {
                assert_eq!(
                    serial.output().edge_assignments_at_level(level as u32),
                    par.output().edge_assignments_at_level(level as u32),
                    "{name} engine #{which} level {level}"
                );
            }
            assert_eq!(serial.edge_assignments(), par.edge_assignments(), "{name} #{which}");
        }
    }
}

/// Threshold configs must also agree between engines (the ufsweep
/// engine cuts the entry list before partitioning, the serial sweep
/// breaks at the first below-threshold entry — the same prefix either
/// way).
#[test]
fn min_similarity_configs_agree_across_engines() {
    let g = gnm(50, 200, WeightMode::Uniform { lo: 0.2, hi: 2.0 }, 23);
    for theta in [0.25, 0.5, 0.75] {
        let serial = LinkClustering::new().min_similarity(theta).run(&g).unwrap();
        let par = LinkClustering::new().threads(4).min_similarity(theta).run(&g).unwrap();
        assert_eq!(serial.dendrogram(), par.dendrogram(), "theta {theta}");
        let sb: Vec<u64> = serial.output().merge_scores().iter().map(|s| s.to_bits()).collect();
        let pb: Vec<u64> = par.output().merge_scores().iter().map(|s| s.to_bits()).collect();
        assert_eq!(sb, pb, "theta {theta}");
    }
}

/// Applies `ops` to a [`ConcurrentUnionFind`] from `threads` worker
/// threads (interleaved round-robin shards on a real [`WorkerPool`]) and
/// returns (final assignments, total number of successful unites).
fn concurrent_union(n: usize, ops: &[(u32, u32)], threads: usize) -> (Vec<u32>, usize) {
    let pool = WorkerPool::new(threads);
    let cuf = Arc::new(ConcurrentUnionFind::new(n));
    let ops: Arc<Vec<(u32, u32)>> = Arc::new(ops.to_vec());
    let successes: Vec<usize> = pool.run_tasks(
        (0..threads)
            .map(|t| {
                let cuf = Arc::clone(&cuf);
                let ops = Arc::clone(&ops);
                Box::new(move || {
                    // Round-robin sharding maximizes cross-thread
                    // contention on the same sets.
                    ops.iter().skip(t).step_by(threads).filter(|&&(a, b)| cuf.unite(a, b)).count()
                }) as Task<usize>
            })
            .collect(),
    );
    (cuf.assignments(), successes.iter().sum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linearizable equivalence against the serial oracle: whatever the
    /// interleaving, the final partition must equal the serial
    /// union-find's over the same operation set (set union is
    /// commutative), and exactly `n - set_count` unites may report
    /// success (each success is one component merge, exactly-once).
    #[test]
    fn concurrent_unionfind_is_linearizable_against_the_serial_oracle(
        n in 2usize..80,
        seed in 0u64..1000,
        threads_pick in 0usize..3,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let threads = [2usize, 4, 8][threads_pick];
        let mut rng = SmallRng::seed_from_u64(seed);
        let ops: Vec<(u32, u32)> = (0..n * 2)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();

        let mut oracle = UnionFind::new(n);
        let mut oracle_successes = 0usize;
        for &(a, b) in &ops {
            if oracle.union(a as usize, b as usize) {
                oracle_successes += 1;
            }
        }

        let (got, successes) = concurrent_union(n, &ops, threads);
        prop_assert_eq!(got, oracle.assignments(), "partition diverged (threads {})", threads);
        prop_assert_eq!(successes, oracle_successes, "success count diverged");
    }

    /// Concurrent finds/same_set during a quiescent period agree with
    /// the serial oracle from any start element.
    #[test]
    fn concurrent_queries_agree_after_parallel_build(
        n in 4usize..60,
        seed in 0u64..500,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let ops: Vec<(u32, u32)> = (0..n)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let (got, _) = concurrent_union(n, &ops, 4);
        let mut oracle = UnionFind::new(n);
        for &(a, b) in &ops {
            oracle.union(a as usize, b as usize);
        }
        let cuf = ConcurrentUnionFind::new(n);
        for &(a, b) in &ops {
            let _ = cuf.unite(a, b);
        }
        for a in 0..n as u32 {
            for b in [0u32, (a + 1) % n as u32] {
                prop_assert_eq!(
                    cuf.same_set(a, b),
                    oracle.connected(a as usize, b as usize)
                );
            }
        }
        prop_assert_eq!(got, oracle.assignments());
    }
}

/// Pool-partitioned parallel finds while unites run on other workers:
/// no torn state, and the end partition is still the oracle's. This is
/// the mixed read/write interleaving the TSan lane chews on.
#[test]
fn concurrent_mixed_finds_and_unites_are_safe() {
    let n = 256usize;
    for threads in [2, 4, 8] {
        let pool = WorkerPool::new(threads + 1);
        let cuf = Arc::new(ConcurrentUnionFind::new(n));
        let ranges = partition_ranges(n - 1, threads);
        let mut tasks: Vec<Task<usize>> = ranges
            .into_iter()
            .map(|r| {
                let cuf = Arc::clone(&cuf);
                Box::new(move || r.filter(|&i| cuf.unite(i as u32, i as u32 + 1)).count())
                    as Task<usize>
            })
            .collect();
        tasks.push({
            let cuf = Arc::clone(&cuf);
            Box::new(move || {
                // Concurrent readers: finds must terminate and stay in
                // bounds whatever the unite interleaving.
                (0..n as u32).map(|i| cuf.find(i) as usize).filter(|&r| r < n).count()
            })
        });
        let results = pool.run_tasks(tasks);
        assert_eq!(results[threads], n, "a find escaped the element range");
        let unites: usize = results[..threads].iter().sum();
        assert_eq!(unites, n - 1, "chain unites must all succeed exactly once");
        assert_eq!(cuf.set_count(), 1);
        assert!(cuf.assignments().iter().all(|&m| m == 0));
    }
}
