//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. It times each benchmark with `std::time::Instant`
//! over `sample_size` iterations and prints mean/min to stdout — no
//! statistics, plots, or baselines.
//!
//! Under `cargo test` (no `--bench` argument) every benchmark runs a
//! single iteration as a smoke test, mirroring upstream's behavior.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value` (upstream re-export).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Measurement mode: quick smoke run (cargo test) or full sampling
/// (cargo bench).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// The benchmark driver (subset of upstream's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line configuration (no-op in this stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, |b| f(b));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Prints the final summary (no-op).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks (subset of upstream's).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (recorded for display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (subset of upstream's `BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{parameter}", function.into()) }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-iteration throughput declaration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple display.
    BytesDecimal(u64),
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `f` with a fresh `setup()` input per iteration; setup time
    /// is excluded.
    pub fn iter_with_setup<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut f: F,
    ) {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let iterations = if bench_mode() { sample_size } else { 1 };
    let mut b = Bencher { iterations, samples: Vec::with_capacity(iterations) };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    if bench_mode() {
        println!("bench {id:<50} mean {mean:>12?} min {min:>12?} ({} iters)", b.samples.len());
    } else {
        println!("test bench {id} ... ok ({mean:?})");
    }
}

/// Declares a group of benchmark functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = "Criterion benchmark group entry point (generated)."]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0;
        c.bench_function("plain", |b| b.iter(|| ran += 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran >= 1);
    }
}
