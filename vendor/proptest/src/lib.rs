//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `Strategy` with `prop_map`, range and tuple
//! strategies, `collection::vec`, `bool::ANY`, and simple
//! `"[a-z]{0,24}"`-style string patterns.
//!
//! Differences from upstream: no shrinking (the failing input is printed
//! as-is), no persistence of regression seeds (`.proptest-regressions`
//! files are ignored), and string strategies support only a limited
//! regex subset (sequences of literals, `.`, and `[...]` classes, each
//! optionally followed by `{n}` or `{m,n}`).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The per-test configuration (subset of upstream's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Base RNG seed; each case derives its own stream from this.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, seed: 0x1c0ffee }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of random values (subset of upstream's `Strategy`;
/// generation only, no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng as _;
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::Rng as _;
            rng.gen_bool(0.5)
        }
    }
}

/// String generation from a limited regex subset: a sequence of atoms
/// (literal char, `.`, or `[...]` with ranges and literals), each
/// optionally followed by `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        use rand::Rng as _;
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let reps = if lo == hi { *lo } else { rng.gen_range(*lo..=*hi) };
            for _ in 0..reps {
                if !chars.is_empty() {
                    out.push(chars[rng.gen_range(0..chars.len())]);
                }
            }
        }
        out
    }
}

/// Parses the supported pattern subset into `(alphabet, min, max)` atoms.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    const DOT: &str = " abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789\
                       !\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~\u{e9}\u{3b1}";
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                DOT.chars().collect()
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        set.push(chars[i + 1]);
                        i += 2;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (a, b) = (chars[i], chars[i + 2]);
                        assert!(a <= b, "invalid class range {a}-{b} in {pattern:?}");
                        for c in a..=b {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [ in pattern {pattern:?}");
                i += 1; // skip ']'
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad lower bound"),
                    b.trim().parse().expect("bad upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        atoms.push((alphabet, lo, hi));
    }
    atoms
}

/// Runs `cases` random cases of `test`, reporting the first failure with
/// its generated input. Called by the expansion of [`proptest!`].
/// A failed test case (upstream's rejection/failure type, simplified).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs `cases` random cases of `test`, reporting the first failure with
/// its generated input. Called by the expansion of [`proptest!`].
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    strategy: &S,
    test: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(config.seed.wrapping_add(case as u64));
        let value = strategy.generate(&mut rng);
        let display = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(rejection)) => {
                eprintln!("proptest stand-in: case {case}/{} failed for input:", config.cases);
                eprintln!("  {display}");
                panic!("test case failed: {rejection}");
            }
            Err(panic) => {
                eprintln!("proptest stand-in: case {case}/{} failed for input:", config.cases);
                eprintln!("  {display}");
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// The property-test macro (generation-only stand-in for upstream's).
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __strategy = ($($strat,)+);
            $crate::run_cases(&__config, &__strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (plain `assert!` here — no
/// shrinking, the runner prints the failing input).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_parser_handles_workspace_patterns() {
        use rand::SeedableRng as _;
        let mut rng = super::TestRng::seed_from_u64(1);
        for pattern in ["[a-z]{0,24}", "[A-Za-z0-9]{1,16}", ".{0,200}", "[a-zA-Z ,.!#@]{0,200}"] {
            for _ in 0..200 {
                let s = Strategy::generate(&pattern, &mut rng);
                match pattern {
                    "[a-z]{0,24}" => {
                        assert!(s.len() <= 24 && s.bytes().all(|b| b.is_ascii_lowercase()))
                    }
                    "[A-Za-z0-9]{1,16}" => {
                        assert!(
                            (1..=16).contains(&s.len())
                                && s.bytes().all(|b| b.is_ascii_alphanumeric())
                        )
                    }
                    _ => assert!(s.chars().count() <= 200),
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_strategies(x in 0usize..10, y in 5u64..9, f in 0.25f64..0.75) {
            prop_assert!(x < 10);
            prop_assert!((5..9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_vec_compose(v in super::collection::vec((0u32..5, super::bool::ANY).prop_map(|(n, b)| if b { n } else { 0 }), 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }
}
