//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`SmallRng`, `SeedableRng`, `Rng::{gen, gen_range, gen_bool}`,
//! `seq::SliceRandom::shuffle`).
//!
//! The container this repository builds in has no registry access, so
//! the real crate cannot be downloaded; the root `Cargo.toml` patches
//! `rand` to this implementation. The generator is xoshiro256++ seeded
//! via SplitMix64 — high-quality and deterministic per seed, though the
//! streams differ from upstream `rand` (no test in this workspace
//! depends on upstream's exact streams, only on seed-determinism).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random number generation trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from program entropy. Deterministic in
    /// this stand-in (derived from the current time).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++ in this stand-in).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            SmallRng { s }
        }
    }

    /// The standard generator (same engine as [`SmallRng`] here).
    pub type StdRng = SmallRng;
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience: a fresh entropy-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&y));
            let z: u64 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_frequency_is_sane() {
        let mut rng = rngs::SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }
}
