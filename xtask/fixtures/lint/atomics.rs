//! Seeded violations for rule family (a): atomics-ordering discipline.
//! Analyzed by xtask's lint self-tests under two module paths: a
//! non-allowlisted module (every site is `atomics-module`) and an
//! allowlisted one (`atomics-justify` / `relaxed-publish` fire).
//! This file is test data, never compiled into any crate.

fn justified_load(x: &AtomicU64) -> u64 {
    x.load(Ordering::Acquire) // ordering: pairs with the release store in publish()
}

fn unjustified_load(x: &AtomicU64) -> u64 {
    x.load(Ordering::SeqCst)
}

fn unjustified_rmw(x: &AtomicU64) -> u64 {
    x.fetch_add(1, Ordering::AcqRel)
}

fn relaxed_publish(x: &AtomicU64) {
    // ordering: justified comment, but the relaxed *store* is still a
    // cross-thread publish outside the trace-ring protocol.
    x.store(42, Ordering::Relaxed);
}
