//! Seeded violations for rule family (d): truncating-cast audit.
//! This file is test data, never compiled into any crate.

fn bare_narrowing(e: u64) -> u32 {
    e as u32
}

fn bare_usize_narrowing(e: u64) -> usize {
    e as usize
}

fn justified_narrowing(e: u64) -> u32 {
    // cast: edge count validated against u32::MAX at graph build
    e as u32
}

fn widening_is_fine(v: u32) -> u64 {
    v as u64
}

fn float_cast_is_fine(v: u32) -> f64 {
    v as f64
}
