//! A fixture with zero violations, analyzed as `parallel::pool`: every
//! ordering is justified, lock order is consistent, floats use
//! total_cmp, casts are justified, and thread creation is sanctioned.
//! This file is test data, never compiled into any crate.

fn justified_atomics(x: &AtomicU64) -> u64 {
    // ordering: release store pairs with the acquire load below
    x.store(1, Ordering::Release);
    x.load(Ordering::Acquire) // ordering: pairs with the release store above
}

fn consistent_lock_order(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    a.merge(&b);
}

fn consistent_lock_order_again(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    b.absorb(&a);
}

fn total_cmp_sort(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}

fn sanctioned_spawn() {
    let handle = thread::Builder::new().spawn(|| worker_loop());
}
