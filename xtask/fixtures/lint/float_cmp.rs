//! Seeded violations for rule family (c): float-comparison discipline.
//! This file is test data, never compiled into any crate.

fn bare_literal_cmp(x: f64) -> bool {
    x > 0.5
}

fn bare_equality(x: f64) -> bool {
    x == 1.0
}

fn justified_cmp(x: f64) -> bool {
    // float-cmp: threshold is exact in binary; NaN correctly falls through
    x >= 0.25
}

fn partial_cmp_sort(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn integer_cmp_is_fine(x: u32) -> bool {
    x > 5
}
