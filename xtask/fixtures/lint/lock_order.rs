//! Seeded violations for rule family (b): lock-order analysis. The two
//! functions acquire `alpha` and `beta` in opposite orders — the
//! classic AB/BA deadlock schedule — and a second pair reproduces the
//! same cycle interprocedurally through distinctively-named helpers.
//! This file is test data, never compiled into any crate.

fn ab_order(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    a.merge(&b);
}

fn ba_order(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    b.merge(&a);
}

fn outer_holds_alpha(&self) {
    let a = self.alpha.lock();
    self.fixture_grab_beta(a);
}

fn fixture_grab_beta(&self, a: Guard) {
    let b = self.beta.lock();
    b.absorb(a);
}
