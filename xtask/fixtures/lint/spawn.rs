//! Seeded violations for rule family (e): the bare-`thread::spawn` ban.
//! This file is test data, never compiled into any crate.

fn rogue_spawn() {
    let handle = thread::spawn(|| heavy_work());
    handle.join().unwrap(); // xtask-allow: fixture, not first-party code
}

fn rogue_builder() {
    let b = thread::Builder::new();
}
