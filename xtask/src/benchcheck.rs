//! Structural validation of `BENCH_scale.json`, for the `bench-ladder`
//! gate.
//!
//! Re-parses the scale-ladder artifact with the harness's own JSON
//! reader (shared with [`crate::tracecheck`]) so a bug in the bench
//! crate's hand-rolled writer cannot hide behind the bench crate's own
//! serializer. Checks the `linkclust-bench-scale/v2` schema: the
//! document header, the hardware block (visible cores, optional cgroup
//! quota, the `threads_exceed_cores` flag), the document-level
//! `parallel_speedup_positive_at_largest_rung` boolean, a non-empty
//! `rungs` array, every per-rung field with the right type (including
//! the per-sample init/sort/sweep phase split and the per-rung speedup
//! verdict), per-rung correctness booleans true, and a non-empty
//! `threads` sample array per rung. The speedup booleans must be
//! *present*, not *true*: a quota-limited one-core runner honestly
//! reports false, and the gate must not punish honesty.

use crate::tracecheck::{parse, Json};

/// What a validated scale document contained, for the gate's log line.
#[derive(Debug)]
pub(crate) struct ScaleSummary {
    /// Number of rungs in the document.
    pub(crate) rungs: usize,
    /// Largest `edges` value across rungs.
    pub(crate) max_edges: u64,
    /// Whether the document was produced by a `--smoke` run.
    pub(crate) smoke: bool,
}

const FAMILIES: &[&str] = &["gnm", "barabasi_albert", "lfr_like"];

/// Validates `text` as a `linkclust-bench-scale/v2` document.
///
/// Returns a summary on success and a human-readable description of the
/// first structural problem otherwise.
pub(crate) fn check_scale_document(text: &str) -> Result<ScaleSummary, String> {
    let doc = parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("linkclust-bench-scale/v2") => {}
        Some(other) => return Err(format!("unexpected schema tag {other:?}")),
        None => return Err("top-level object lacks a string `schema` tag".to_string()),
    }
    let smoke = doc.get("smoke").and_then(Json::as_bool).ok_or("`smoke` must be a boolean")?;
    let runs = doc.get("runs").and_then(Json::as_f64).ok_or("`runs` must be a number")?;
    if runs < 1.0 {
        return Err(format!("`runs` must be at least 1, got {runs}"));
    }
    let hardware = doc.get("hardware").ok_or("top-level object lacks a `hardware` object")?;
    let cores =
        hardware.get("cores").and_then(Json::as_f64).ok_or("`hardware.cores` must be a number")?;
    if cores < 1.0 {
        return Err(format!("`hardware.cores` must be at least 1, got {cores}"));
    }
    match hardware.get("cgroup_quota_cores") {
        Some(Json::Null) => {}
        Some(v) => {
            let q = v.as_f64().ok_or("`hardware.cgroup_quota_cores` must be a number or null")?;
            if q <= 0.0 {
                return Err(format!("`hardware.cgroup_quota_cores` must be positive, got {q}"));
            }
        }
        None => return Err("`hardware` lacks `cgroup_quota_cores` (number or null)".to_string()),
    }
    hardware
        .get("threads_exceed_cores")
        .and_then(Json::as_bool)
        .ok_or("`hardware.threads_exceed_cores` must be a boolean")?;
    // Presence check only — false is the honest value on a runner whose
    // thread grid exceeds its cores.
    doc.get("parallel_speedup_positive_at_largest_rung")
        .and_then(Json::as_bool)
        .ok_or("`parallel_speedup_positive_at_largest_rung` must be a boolean")?;

    let rungs = match doc.get("rungs") {
        Some(Json::Arr(rungs)) => rungs,
        Some(_) => return Err("`rungs` is not an array".to_string()),
        None => return Err("top-level object lacks a `rungs` array".to_string()),
    };
    if rungs.is_empty() {
        return Err("`rungs` is empty: the ladder measured nothing".to_string());
    }

    let mut max_edges = 0u64;
    for (i, rung) in rungs.iter().enumerate() {
        max_edges = max_edges.max(check_rung(rung).map_err(|e| format!("rung {i}: {e}"))?);
    }
    Ok(ScaleSummary { rungs: rungs.len(), max_edges, smoke })
}

/// Validates one rung object; returns its `edges` count.
fn check_rung(rung: &Json) -> Result<u64, String> {
    let family = rung.get("family").and_then(Json::as_str).ok_or("lacks a string `family`")?;
    if !FAMILIES.contains(&family) {
        return Err(format!("unknown generator family {family:?}"));
    }
    let num =
        |key: &str| rung.get(key).and_then(Json::as_f64).ok_or(format!("lacks a numeric `{key}`"));
    let tier = num("tier")?;
    let vertices = num("vertices")?;
    let edges = num("edges")?;
    num("csr_memory_bytes")?;
    num("peak_rss_bytes")?;
    num("bin_write_ms")?;
    num("bin_read_ms")?;
    if tier < 1.0 || vertices < 1.0 || edges < 1.0 {
        return Err(format!("implausible sizes (tier {tier}, vertices {vertices}, edges {edges})"));
    }

    for key in ["bin_roundtrip_ok", "csr_matches_adjacency"] {
        match rung.get(key).and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => return Err(format!("`{key}` is false: correctness failure")),
            None => return Err(format!("lacks a boolean `{key}`")),
        }
    }
    // Presence only — false is legitimate on core-starved runners.
    rung.get("parallel_speedup_positive")
        .and_then(Json::as_bool)
        .ok_or("lacks a boolean `parallel_speedup_positive`")?;

    let samples = match rung.get("threads") {
        Some(Json::Arr(samples)) if !samples.is_empty() => samples,
        Some(Json::Arr(_)) => return Err("`threads` is empty".to_string()),
        _ => return Err("lacks a `threads` array".to_string()),
    };
    for (j, s) in samples.iter().enumerate() {
        for key in ["threads", "min_ms", "mean_ms", "speedup"] {
            let v = s
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("thread sample {j} lacks a numeric `{key}`"))?;
            if v < 0.0 {
                return Err(format!("thread sample {j} has a negative `{key}`"));
            }
        }
        let phases = s.get("phases").ok_or(format!("thread sample {j} lacks a `phases` object"))?;
        for key in ["init_ms", "sort_ms", "sweep_ms"] {
            let v = phases
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("thread sample {j} lacks a numeric `phases.{key}`"))?;
            if v < 0.0 {
                return Err(format!("thread sample {j} has a negative `phases.{key}`"));
            }
        }
    }

    // NMI / pair-F1 are null except on planted-community rungs; when
    // present they are probabilities.
    for key in ["nmi", "pair_f1"] {
        match rung.get(key) {
            Some(Json::Null) | None => {}
            Some(v) => {
                let v = v.as_f64().ok_or(format!("`{key}` must be a number or null"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("`{key}` = {v} is outside [0, 1]"));
                }
            }
        }
    }
    Ok(edges as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rung(family: &str, edges: u64, ok: bool) -> String {
        format!(
            "{{\"family\":\"{family}\",\"tier\":1000,\"vertices\":200,\"edges\":{edges},\
              \"csr_memory_bytes\":48804,\"peak_rss_bytes\":8294400,\
              \"bin_write_ms\":0.03,\"bin_read_ms\":0.05,\"bin_roundtrip_ok\":true,\
              \"csr_matches_adjacency\":{ok},\
              \"parallel_speedup_positive\":false,\
              \"threads\":[{{\"threads\":1,\"min_ms\":2.2,\"mean_ms\":2.4,\"speedup\":1.0,\
              \"phases\":{{\"init_ms\":1.1,\"sort_ms\":0.2,\"sweep_ms\":0.9}}}}],\
              \"nmi\":null,\"pair_f1\":null}}"
        )
    }

    fn doc(rungs: &[String]) -> String {
        format!(
            "{{\"schema\":\"linkclust-bench-scale/v2\",\"smoke\":true,\"runs\":2,\
              \"hardware\":{{\"cores\":1,\"cgroup_quota_cores\":null,\
              \"threads_exceed_cores\":true}},\
              \"parallel_speedup_positive_at_largest_rung\":false,\
              \"ba_edge_cap\":100000,\"rungs\":[{}]}}",
            rungs.join(",")
        )
    }

    #[test]
    fn accepts_a_well_formed_document() {
        let text = doc(&[rung("gnm", 1000, true), rung("lfr_like", 1_000_000, true)]);
        let summary = check_scale_document(&text).expect("document should validate");
        assert_eq!(summary.rungs, 2);
        assert_eq!(summary.max_edges, 1_000_000);
        assert!(summary.smoke);
    }

    #[test]
    fn rejects_structural_and_correctness_problems() {
        assert!(check_scale_document("{").is_err());
        assert!(check_scale_document("{\"schema\":\"other/v9\"}").is_err());
        let empty = doc(&[]);
        assert!(check_scale_document(&empty).unwrap_err().contains("empty"));
        let failed = doc(&[rung("gnm", 1000, false)]);
        assert!(check_scale_document(&failed).unwrap_err().contains("correctness"));
        let bad_family = doc(&[rung("erdos", 1000, true)]);
        assert!(check_scale_document(&bad_family).unwrap_err().contains("family"));
        let no_threads = rung("gnm", 1000, true).replace(
            "\"threads\":[{\"threads\":1,\"min_ms\":2.2,\"mean_ms\":2.4,\"speedup\":1.0,\
             \"phases\":{\"init_ms\":1.1,\"sort_ms\":0.2,\"sweep_ms\":0.9}}]",
            "\"threads\":[]",
        );
        assert!(check_scale_document(&doc(&[no_threads])).unwrap_err().contains("empty"));
        let bad_nmi = rung("gnm", 1000, true).replace("\"nmi\":null", "\"nmi\":1.5");
        assert!(check_scale_document(&doc(&[bad_nmi])).unwrap_err().contains("outside"));
    }

    #[test]
    fn rejects_v2_specific_omissions() {
        // An old v1 document must be rejected by its schema tag alone.
        assert!(check_scale_document("{\"schema\":\"linkclust-bench-scale/v1\"}")
            .unwrap_err()
            .contains("schema"));
        let no_flag = doc(&[rung("gnm", 1000, true)])
            .replace("\"parallel_speedup_positive_at_largest_rung\":false,", "");
        assert!(check_scale_document(&no_flag)
            .unwrap_err()
            .contains("parallel_speedup_positive_at_largest_rung"));
        let no_quota = doc(&[rung("gnm", 1000, true)]).replace("\"cgroup_quota_cores\":null,", "");
        assert!(check_scale_document(&no_quota).unwrap_err().contains("cgroup_quota_cores"));
        let no_exceed =
            doc(&[rung("gnm", 1000, true)]).replace(",\"threads_exceed_cores\":true", "");
        assert!(check_scale_document(&no_exceed).unwrap_err().contains("threads_exceed_cores"));
        let no_rung_flag =
            doc(&[rung("gnm", 1000, true).replace("\"parallel_speedup_positive\":false,", "")]);
        assert!(check_scale_document(&no_rung_flag)
            .unwrap_err()
            .contains("parallel_speedup_positive"));
        let no_phases = doc(&[rung("gnm", 1000, true)
            .replace(",\"phases\":{\"init_ms\":1.1,\"sort_ms\":0.2,\"sweep_ms\":0.9}", "")]);
        assert!(check_scale_document(&no_phases).unwrap_err().contains("phases"));
        // A quota-limited runner reporting cgroup_quota_cores as a
        // number and every speedup flag false still validates: honesty
        // is not a gate failure.
        let quota = doc(&[rung("gnm", 1000, true)])
            .replace("\"cgroup_quota_cores\":null", "\"cgroup_quota_cores\":0.5");
        assert!(check_scale_document(&quota).is_ok());
    }
}
