//! Structural validation of the benchmark artifacts, for the
//! `bench-ladder`, `bench-serve`, and `serve-smoke` gates.
//!
//! Re-parses each artifact with the harness's own JSON reader (shared
//! with [`crate::tracecheck`]) so a bug in the bench crate's
//! hand-rolled writers cannot hide behind the bench crate's own
//! serializer.
//!
//! For `BENCH_scale.json` (`linkclust-bench-scale/v2`): the document
//! header, the hardware block (visible cores, optional cgroup quota,
//! the `threads_exceed_cores` flag), the document-level
//! `parallel_speedup_positive_at_largest_rung` boolean, a non-empty
//! `rungs` array, every per-rung field with the right type (including
//! the per-sample init/sort/sweep phase split and the per-rung speedup
//! verdict), per-rung correctness booleans true, and a non-empty
//! `threads` sample array per rung. The speedup booleans must be
//! *present*, not *true*: a quota-limited one-core runner honestly
//! reports false, and the gate must not punish honesty.
//!
//! For `BENCH_serve.json` (`linkclust-bench-serve/v1`): the header,
//! the graph block, exactly the six query kinds each with latency
//! quantiles and a non-zero count (counts summing to `queries`), the
//! cache block with a hit rate in [0, 1], and the admission block —
//! the mid-run recluster must have swapped the generation, and a full
//! (non-smoke) run must have issued ≥ 100 000 queries and observed
//! old-generation answers *while* the admission was in flight (the
//! no-stall evidence).

use crate::tracecheck::{parse, Json};

/// What a validated scale document contained, for the gate's log line.
#[derive(Debug)]
pub(crate) struct ScaleSummary {
    /// Number of rungs in the document.
    pub(crate) rungs: usize,
    /// Largest `edges` value across rungs.
    pub(crate) max_edges: u64,
    /// Whether the document was produced by a `--smoke` run.
    pub(crate) smoke: bool,
}

const FAMILIES: &[&str] = &["gnm", "barabasi_albert", "lfr_like"];

/// Validates `text` as a `linkclust-bench-scale/v2` document.
///
/// Returns a summary on success and a human-readable description of the
/// first structural problem otherwise.
pub(crate) fn check_scale_document(text: &str) -> Result<ScaleSummary, String> {
    let doc = parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("linkclust-bench-scale/v2") => {}
        Some(other) => return Err(format!("unexpected schema tag {other:?}")),
        None => return Err("top-level object lacks a string `schema` tag".to_string()),
    }
    let smoke = doc.get("smoke").and_then(Json::as_bool).ok_or("`smoke` must be a boolean")?;
    let runs = doc.get("runs").and_then(Json::as_f64).ok_or("`runs` must be a number")?;
    if runs < 1.0 {
        return Err(format!("`runs` must be at least 1, got {runs}"));
    }
    let hardware = doc.get("hardware").ok_or("top-level object lacks a `hardware` object")?;
    let cores =
        hardware.get("cores").and_then(Json::as_f64).ok_or("`hardware.cores` must be a number")?;
    if cores < 1.0 {
        return Err(format!("`hardware.cores` must be at least 1, got {cores}"));
    }
    match hardware.get("cgroup_quota_cores") {
        Some(Json::Null) => {}
        Some(v) => {
            let q = v.as_f64().ok_or("`hardware.cgroup_quota_cores` must be a number or null")?;
            if q <= 0.0 {
                return Err(format!("`hardware.cgroup_quota_cores` must be positive, got {q}"));
            }
        }
        None => return Err("`hardware` lacks `cgroup_quota_cores` (number or null)".to_string()),
    }
    hardware
        .get("threads_exceed_cores")
        .and_then(Json::as_bool)
        .ok_or("`hardware.threads_exceed_cores` must be a boolean")?;
    // Presence check only — false is the honest value on a runner whose
    // thread grid exceeds its cores.
    doc.get("parallel_speedup_positive_at_largest_rung")
        .and_then(Json::as_bool)
        .ok_or("`parallel_speedup_positive_at_largest_rung` must be a boolean")?;

    let rungs = match doc.get("rungs") {
        Some(Json::Arr(rungs)) => rungs,
        Some(_) => return Err("`rungs` is not an array".to_string()),
        None => return Err("top-level object lacks a `rungs` array".to_string()),
    };
    if rungs.is_empty() {
        return Err("`rungs` is empty: the ladder measured nothing".to_string());
    }

    let mut max_edges = 0u64;
    for (i, rung) in rungs.iter().enumerate() {
        max_edges = max_edges.max(check_rung(rung).map_err(|e| format!("rung {i}: {e}"))?);
    }
    Ok(ScaleSummary { rungs: rungs.len(), max_edges, smoke })
}

/// Validates one rung object; returns its `edges` count.
fn check_rung(rung: &Json) -> Result<u64, String> {
    let family = rung.get("family").and_then(Json::as_str).ok_or("lacks a string `family`")?;
    if !FAMILIES.contains(&family) {
        return Err(format!("unknown generator family {family:?}"));
    }
    let num =
        |key: &str| rung.get(key).and_then(Json::as_f64).ok_or(format!("lacks a numeric `{key}`"));
    let tier = num("tier")?;
    let vertices = num("vertices")?;
    let edges = num("edges")?;
    num("csr_memory_bytes")?;
    num("peak_rss_bytes")?;
    num("bin_write_ms")?;
    num("bin_read_ms")?;
    if tier < 1.0 || vertices < 1.0 || edges < 1.0 {
        return Err(format!("implausible sizes (tier {tier}, vertices {vertices}, edges {edges})"));
    }

    for key in ["bin_roundtrip_ok", "csr_matches_adjacency"] {
        match rung.get(key).and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => return Err(format!("`{key}` is false: correctness failure")),
            None => return Err(format!("lacks a boolean `{key}`")),
        }
    }
    // Presence only — false is legitimate on core-starved runners.
    rung.get("parallel_speedup_positive")
        .and_then(Json::as_bool)
        .ok_or("lacks a boolean `parallel_speedup_positive`")?;

    let samples = match rung.get("threads") {
        Some(Json::Arr(samples)) if !samples.is_empty() => samples,
        Some(Json::Arr(_)) => return Err("`threads` is empty".to_string()),
        _ => return Err("lacks a `threads` array".to_string()),
    };
    for (j, s) in samples.iter().enumerate() {
        for key in ["threads", "min_ms", "mean_ms", "speedup"] {
            let v = s
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("thread sample {j} lacks a numeric `{key}`"))?;
            if v < 0.0 {
                return Err(format!("thread sample {j} has a negative `{key}`"));
            }
        }
        let phases = s.get("phases").ok_or(format!("thread sample {j} lacks a `phases` object"))?;
        for key in ["init_ms", "sort_ms", "sweep_ms"] {
            let v = phases
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("thread sample {j} lacks a numeric `phases.{key}`"))?;
            if v < 0.0 {
                return Err(format!("thread sample {j} has a negative `phases.{key}`"));
            }
        }
    }

    // NMI / pair-F1 are null except on planted-community rungs; when
    // present they are probabilities.
    for key in ["nmi", "pair_f1"] {
        match rung.get(key) {
            Some(Json::Null) | None => {}
            Some(v) => {
                let v = v.as_f64().ok_or(format!("`{key}` must be a number or null"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("`{key}` = {v} is outside [0, 1]"));
                }
            }
        }
    }
    Ok(edges as u64)
}

/// What a validated serve document contained, for the gate's log line.
#[derive(Debug)]
pub(crate) struct ServeSummary {
    /// Total queries the load run issued.
    pub(crate) queries: u64,
    /// Whether the document was produced by a `--smoke` run.
    pub(crate) smoke: bool,
    /// Server-side answer-cache hit rate.
    pub(crate) hit_rate: f64,
    /// Queries answered by the pre-swap generation during the in-flight
    /// admission.
    pub(crate) queries_during_admission: u64,
}

/// The query kinds a serve document must report, in order.
const SERVE_KINDS: &[&str] = &["cut", "edge", "vertex", "topk", "profile", "best"];

/// Queries a full (non-smoke) serve run must issue.
const SERVE_FULL_QUERIES: f64 = 100_000.0;

/// Validates `text` as a `linkclust-bench-serve/v1` document.
///
/// Returns a summary on success and a human-readable description of the
/// first structural problem otherwise.
pub(crate) fn check_serve_document(text: &str) -> Result<ServeSummary, String> {
    let doc = parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("linkclust-bench-serve/v1") => {}
        Some(other) => return Err(format!("unexpected schema tag {other:?}")),
        None => return Err("top-level object lacks a string `schema` tag".to_string()),
    }
    let smoke = doc.get("smoke").and_then(Json::as_bool).ok_or("`smoke` must be a boolean")?;
    let queries = doc.get("queries").and_then(Json::as_f64).ok_or("`queries` must be a number")?;
    if queries < 1.0 {
        return Err(format!("`queries` must be at least 1, got {queries}"));
    }
    if !smoke && queries < SERVE_FULL_QUERIES {
        return Err(format!(
            "full serve run issued only {queries} queries (expected at least {SERVE_FULL_QUERIES})"
        ));
    }
    let graph = doc.get("graph").ok_or("top-level object lacks a `graph` object")?;
    for key in ["vertices", "edges"] {
        let v = graph
            .get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("`graph.{key}` must be a number"))?;
        if v < 1.0 {
            return Err(format!("`graph.{key}` must be at least 1, got {v}"));
        }
    }

    let kinds = match doc.get("kinds") {
        Some(Json::Arr(kinds)) => kinds,
        Some(_) => return Err("`kinds` is not an array".to_string()),
        None => return Err("top-level object lacks a `kinds` array".to_string()),
    };
    if kinds.len() != SERVE_KINDS.len() {
        return Err(format!("expected {} query kinds, got {}", SERVE_KINDS.len(), kinds.len()));
    }
    let mut total_count = 0.0f64;
    for (expected, kind) in SERVE_KINDS.iter().zip(kinds) {
        let name = kind.get("kind").and_then(Json::as_str).ok_or("kind lacks a string `kind`")?;
        if name != *expected {
            return Err(format!("expected kind {expected:?}, got {name:?}"));
        }
        for key in ["count", "p50_ns", "p90_ns", "p99_ns", "mean_ns"] {
            let v = kind
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("kind {name:?} lacks a numeric `{key}`"))?;
            if v < 0.0 {
                return Err(format!("kind {name:?} has a negative `{key}`"));
            }
        }
        let count = kind.get("count").and_then(Json::as_f64).unwrap_or(0.0);
        if count < 1.0 {
            return Err(format!("kind {name:?} was never queried: the mix is broken"));
        }
        total_count += count;
    }
    if (total_count - queries).abs() > 0.5 {
        return Err(format!(
            "per-kind counts sum to {total_count} but the document claims {queries} queries"
        ));
    }

    let cache = doc.get("cache").ok_or("top-level object lacks a `cache` object")?;
    for key in ["hits", "misses"] {
        let v = cache
            .get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("`cache.{key}` must be a number"))?;
        if v < 0.0 {
            return Err(format!("`cache.{key}` must be non-negative, got {v}"));
        }
    }
    let hit_rate =
        cache.get("hit_rate").and_then(Json::as_f64).ok_or("`cache.hit_rate` must be a number")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!("`cache.hit_rate` = {hit_rate} is outside [0, 1]"));
    }

    let admission = doc.get("admission").ok_or("top-level object lacks an `admission` object")?;
    let reclusters = admission
        .get("reclusters")
        .and_then(Json::as_f64)
        .ok_or("`admission.reclusters` must be a number")?;
    if reclusters < 1.0 {
        return Err("the load run enqueued no recluster: admission untested".to_string());
    }
    match admission.get("swap_completed").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => {
            return Err("`admission.swap_completed` is false: the swap never landed".to_string())
        }
        None => return Err("`admission.swap_completed` must be a boolean".to_string()),
    }
    let during = admission
        .get("queries_during_admission")
        .and_then(Json::as_f64)
        .ok_or("`admission.queries_during_admission` must be a number")?;
    if during < 0.0 {
        return Err(format!("`admission.queries_during_admission` is negative: {during}"));
    }
    if !smoke && during < 1.0 {
        return Err("full serve run saw no queries answered during the in-flight admission — \
             the recluster stalled serving"
            .to_string());
    }
    let before = admission
        .get("generation_before")
        .and_then(Json::as_f64)
        .ok_or("`admission.generation_before` must be a number")?;
    let after = admission
        .get("generation_after")
        .and_then(Json::as_f64)
        .ok_or("`admission.generation_after` must be a number")?;
    if after <= before {
        return Err(format!(
            "generation did not advance across the admission ({before} -> {after})"
        ));
    }

    Ok(ServeSummary {
        queries: queries as u64,
        smoke,
        hit_rate,
        queries_during_admission: during as u64,
    })
}

/// What a validated daemon stats document contained, for the gate's
/// log line.
#[derive(Debug)]
pub(crate) struct StatsSummary {
    /// Published index generation at shutdown.
    pub(crate) generation: u64,
    /// Seconds the daemon was up.
    pub(crate) uptime_seconds: f64,
    /// Runtime-gauge sampler ticks recorded.
    pub(crate) ticks: u64,
}

/// Runtime gauge rings every `linkclust-serve-stats/v2` document must
/// report (mirrors `linkclust-serve`'s `RING_NAMES`).
const STATS_GAUGES: &[&str] = &[
    "rss_current_bytes",
    "rss_peak_bytes",
    "cache_entries",
    "cache_hit_ratio",
    "pool_queue_depth",
    "index_generation",
];

/// Validates `text` as a `linkclust-serve-stats/v2` document — the
/// stats block `linkclustd` prints at shutdown (and serves for the
/// `stats` op). Checks the v2 additions explicitly: `uptime_seconds`,
/// `admit_failures`, `trace_events_dropped`, and the `runtime` block
/// with every gauge ring.
pub(crate) fn check_serve_stats_document(text: &str) -> Result<StatsSummary, String> {
    let doc = parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("linkclust-serve-stats/v2") => {}
        Some(other) => return Err(format!("unexpected schema tag {other:?}")),
        None => return Err("top-level object lacks a string `schema` tag".to_string()),
    }
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err("`ok` must be true".to_string());
    }
    let generation = doc
        .get("generation")
        .and_then(Json::as_index)
        .ok_or("`generation` must be a non-negative integer")?;
    if generation < 1 {
        return Err("`generation` must be at least 1: the daemon serves an index".to_string());
    }
    let uptime = doc
        .get("uptime_seconds")
        .and_then(Json::as_f64)
        .ok_or("`uptime_seconds` must be a number (v2 addition)")?;
    if uptime < 0.0 {
        return Err(format!("`uptime_seconds` is negative: {uptime}"));
    }

    let queries = doc.get("queries").ok_or("top-level object lacks a `queries` object")?;
    for kind in SERVE_KINDS {
        let entry = queries.get(kind).ok_or(format!("`queries` lacks kind {kind:?}"))?;
        for key in ["count", "p50_ns", "p90_ns", "p99_ns"] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("kind {kind:?} lacks a numeric `{key}`"))?;
            if v < 0.0 {
                return Err(format!("kind {kind:?} has a negative `{key}`"));
            }
        }
        // A never-queried kind has no mean (NaN renders as null).
        match entry.get("mean_ns") {
            Some(Json::Null | Json::Num(_)) => {}
            _ => return Err(format!("kind {kind:?} lacks `mean_ns` (number or null)")),
        }
    }

    let cache = doc.get("cache").ok_or("top-level object lacks a `cache` object")?;
    let hit_rate =
        cache.get("hit_rate").and_then(Json::as_f64).ok_or("`cache.hit_rate` must be a number")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!("`cache.hit_rate` = {hit_rate} is outside [0, 1]"));
    }
    for key in ["admissions", "admit_failures", "swaps", "trace_events_dropped"] {
        doc.get(key)
            .and_then(Json::as_index)
            .ok_or(format!("`{key}` must be a non-negative integer"))?;
    }

    let phases = doc.get("phases").ok_or("top-level object lacks a `phases` object")?;
    for phase in ["serve_query", "serve_admit", "serve_swap"] {
        let entry = phases.get(phase).ok_or(format!("`phases` lacks {phase:?}"))?;
        for key in ["nanos", "calls"] {
            entry
                .get(key)
                .and_then(Json::as_index)
                .ok_or(format!("phase {phase:?} lacks a non-negative integer `{key}`"))?;
        }
    }

    let runtime = doc.get("runtime").ok_or("top-level object lacks a `runtime` object")?;
    let ticks = runtime
        .get("ticks")
        .and_then(Json::as_index)
        .ok_or("`runtime.ticks` must be a non-negative integer")?;
    if ticks < 1 {
        return Err("`runtime.ticks` is 0: the gauge sampler never ran".to_string());
    }
    let gauges = runtime.get("gauges").ok_or("`runtime` lacks a `gauges` object")?;
    for name in STATS_GAUGES {
        let ring = gauges.get(name).ok_or(format!("`runtime.gauges` lacks {name:?}"))?;
        // latest / window_min / window_max are null until a sample with
        // a readable value lands (e.g. RSS on non-Linux hosts).
        for key in ["latest", "window_min", "window_max"] {
            match ring.get(key) {
                Some(Json::Null | Json::Num(_)) => {}
                _ => return Err(format!("gauge {name:?} lacks `{key}` (number or null)")),
            }
        }
        let samples = ring
            .get("samples")
            .and_then(Json::as_index)
            .ok_or(format!("gauge {name:?} lacks a non-negative integer `samples`"))?;
        if samples < 1 {
            return Err(format!("gauge {name:?} holds no samples"));
        }
    }

    Ok(StatsSummary { generation, uptime_seconds: uptime, ticks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rung(family: &str, edges: u64, ok: bool) -> String {
        format!(
            "{{\"family\":\"{family}\",\"tier\":1000,\"vertices\":200,\"edges\":{edges},\
              \"csr_memory_bytes\":48804,\"peak_rss_bytes\":8294400,\
              \"bin_write_ms\":0.03,\"bin_read_ms\":0.05,\"bin_roundtrip_ok\":true,\
              \"csr_matches_adjacency\":{ok},\
              \"parallel_speedup_positive\":false,\
              \"threads\":[{{\"threads\":1,\"min_ms\":2.2,\"mean_ms\":2.4,\"speedup\":1.0,\
              \"phases\":{{\"init_ms\":1.1,\"sort_ms\":0.2,\"sweep_ms\":0.9}}}}],\
              \"nmi\":null,\"pair_f1\":null}}"
        )
    }

    fn doc(rungs: &[String]) -> String {
        format!(
            "{{\"schema\":\"linkclust-bench-scale/v2\",\"smoke\":true,\"runs\":2,\
              \"hardware\":{{\"cores\":1,\"cgroup_quota_cores\":null,\
              \"threads_exceed_cores\":true}},\
              \"parallel_speedup_positive_at_largest_rung\":false,\
              \"ba_edge_cap\":100000,\"rungs\":[{}]}}",
            rungs.join(",")
        )
    }

    #[test]
    fn accepts_a_well_formed_document() {
        let text = doc(&[rung("gnm", 1000, true), rung("lfr_like", 1_000_000, true)]);
        let summary = check_scale_document(&text).expect("document should validate");
        assert_eq!(summary.rungs, 2);
        assert_eq!(summary.max_edges, 1_000_000);
        assert!(summary.smoke);
    }

    #[test]
    fn rejects_structural_and_correctness_problems() {
        assert!(check_scale_document("{").is_err());
        assert!(check_scale_document("{\"schema\":\"other/v9\"}").is_err());
        let empty = doc(&[]);
        assert!(check_scale_document(&empty).unwrap_err().contains("empty"));
        let failed = doc(&[rung("gnm", 1000, false)]);
        assert!(check_scale_document(&failed).unwrap_err().contains("correctness"));
        let bad_family = doc(&[rung("erdos", 1000, true)]);
        assert!(check_scale_document(&bad_family).unwrap_err().contains("family"));
        let no_threads = rung("gnm", 1000, true).replace(
            "\"threads\":[{\"threads\":1,\"min_ms\":2.2,\"mean_ms\":2.4,\"speedup\":1.0,\
             \"phases\":{\"init_ms\":1.1,\"sort_ms\":0.2,\"sweep_ms\":0.9}}]",
            "\"threads\":[]",
        );
        assert!(check_scale_document(&doc(&[no_threads])).unwrap_err().contains("empty"));
        let bad_nmi = rung("gnm", 1000, true).replace("\"nmi\":null", "\"nmi\":1.5");
        assert!(check_scale_document(&doc(&[bad_nmi])).unwrap_err().contains("outside"));
    }

    /// A serve document that validates; tests below mutate it.
    fn serve_doc() -> String {
        let kinds: Vec<String> = SERVE_KINDS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let count = if i == 0 { 99_500 } else { 100 };
                format!(
                    "{{\"kind\":\"{name}\",\"count\":{count},\"p50_ns\":9000,\
                      \"p90_ns\":21000,\"p99_ns\":45000,\"mean_ns\":14000.5}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"linkclust-bench-serve/v1\",\"smoke\":false,\"queries\":100000,\
              \"graph\":{{\"vertices\":500,\"edges\":2000}},\
              \"kinds\":[{}],\
              \"cache\":{{\"hits\":60000,\"misses\":40000,\"hit_rate\":0.6}},\
              \"admission\":{{\"reclusters\":1,\"swap_completed\":true,\
              \"queries_during_admission\":37,\
              \"generation_before\":1,\"generation_after\":2}}}}",
            kinds.join(",")
        )
    }

    #[test]
    fn accepts_a_well_formed_serve_document() {
        let summary = check_serve_document(&serve_doc()).expect("document should validate");
        assert_eq!(summary.queries, 100_000);
        assert!(!summary.smoke);
        assert!((summary.hit_rate - 0.6).abs() < 1e-9);
        assert_eq!(summary.queries_during_admission, 37);
    }

    #[test]
    fn rejects_omissions() {
        // Every load-bearing field of the serve schema must be present:
        // deleting any one of them turns the document invalid.
        let base = serve_doc();
        let cases: &[(&str, &str, &str)] = &[
            ("\"schema\":\"linkclust-bench-serve/v1\",", "", "schema"),
            ("\"smoke\":false,", "", "smoke"),
            ("\"queries\":100000,", "", "queries"),
            ("\"graph\":{\"vertices\":500,\"edges\":2000},", "", "graph"),
            ("\"cache\":{\"hits\":60000,\"misses\":40000,\"hit_rate\":0.6},", "", "cache"),
            ("\"hit_rate\":0.6", "\"hit_rate\":1.6", "outside"),
            ("\"reclusters\":1", "\"reclusters\":0", "recluster"),
            ("\"swap_completed\":true", "\"swap_completed\":false", "swap"),
            ("\"queries_during_admission\":37", "\"queries_during_admission\":0", "stalled"),
            ("\"generation_after\":2", "\"generation_after\":1", "generation"),
            ("\"p99_ns\":45000,", "", "p99_ns"),
        ];
        for (from, to, expect) in cases {
            let mutated = base.replace(from, to);
            assert_ne!(mutated, base, "mutation {from:?} did not apply");
            let err = check_serve_document(&mutated)
                .expect_err(&format!("mutation {from:?} should invalidate the document"));
            assert!(err.contains(expect), "mutation {from:?}: error {err:?} lacks {expect:?}");
        }
        // Dropping a whole kind breaks both the arity and the count sum.
        let one_kind_short =
            base.replace(",{\"kind\":\"best\",\"count\":100,\"p50_ns\":9000,\"p90_ns\":21000,\"p99_ns\":45000,\"mean_ns\":14000.5}", "");
        assert_ne!(one_kind_short, base);
        assert!(check_serve_document(&one_kind_short).unwrap_err().contains("kinds"));
    }

    #[test]
    fn serve_smoke_relaxations_are_scoped() {
        // A smoke run may be short and may miss the during-admission
        // window, but the swap must still land.
        let smoke = serve_doc()
            .replace("\"smoke\":false", "\"smoke\":true")
            .replace("\"queries\":100000", "\"queries\":2000")
            .replace("\"count\":99500", "\"count\":1500")
            .replace("\"queries_during_admission\":37", "\"queries_during_admission\":0");
        assert!(check_serve_document(&smoke).is_ok());
        // A full run below 100k queries is rejected even if well-formed.
        let short_full = serve_doc().replace("\"queries\":100000", "\"queries\":5000");
        // Patch the counts so only the volume check can fire.
        let short_full = short_full.replace("\"count\":99500", "\"count\":4500");
        assert!(check_serve_document(&short_full).unwrap_err().contains("100000"));
    }

    /// A daemon stats document (`linkclust-serve-stats/v2`) that
    /// validates; tests below mutate it.
    fn stats_doc() -> String {
        let kinds: Vec<String> = SERVE_KINDS
            .iter()
            .map(|name| {
                format!(
                    "\"{name}\":{{\"count\":12,\"p50_ns\":9000,\"p90_ns\":21000,\
                      \"p99_ns\":45000,\"mean_ns\":14000.5}}"
                )
            })
            .collect();
        let gauges: Vec<String> = STATS_GAUGES
            .iter()
            .map(|name| {
                format!(
                    "\"{name}\":{{\"latest\":4.0,\"window_min\":1.0,\
                      \"window_max\":9.0,\"samples\":3}}"
                )
            })
            .collect();
        format!(
            "{{\"ok\":true,\"schema\":\"linkclust-serve-stats/v2\",\"generation\":2,\
              \"uptime_seconds\":12.5,\"queries\":{{{}}},\
              \"cache\":{{\"hits\":40,\"misses\":32,\"hit_rate\":0.55}},\
              \"admissions\":1,\"admit_failures\":0,\"swaps\":1,\
              \"trace_events_dropped\":0,\
              \"phases\":{{\"serve_query\":{{\"nanos\":100,\"calls\":72}},\
              \"serve_admit\":{{\"nanos\":50,\"calls\":1}},\
              \"serve_swap\":{{\"nanos\":20,\"calls\":1}}}},\
              \"runtime\":{{\"ticks\":3,\"gauges\":{{{}}}}}}}",
            kinds.join(","),
            gauges.join(",")
        )
    }

    #[test]
    fn accepts_a_well_formed_stats_document() {
        let summary = check_serve_stats_document(&stats_doc()).expect("document should validate");
        assert_eq!(summary.generation, 2);
        assert_eq!(summary.ticks, 3);
        assert!((summary.uptime_seconds - 12.5).abs() < 1e-9);
        // Pre-first-readable-sample gauges report null; still valid.
        let nulls = stats_doc().replace("\"latest\":4.0", "\"latest\":null");
        assert!(check_serve_stats_document(&nulls).is_ok());
        // A never-queried kind has a null mean; still valid.
        let no_mean = stats_doc().replace("\"mean_ns\":14000.5", "\"mean_ns\":null");
        assert!(check_serve_stats_document(&no_mean).is_ok());
    }

    #[test]
    fn rejects_stats_omissions() {
        // An old v1 document is rejected by its schema tag alone.
        assert!(check_serve_stats_document(
            "{\"ok\":true,\"schema\":\"linkclust-serve-stats/v1\"}"
        )
        .unwrap_err()
        .contains("schema"));
        let base = stats_doc();
        let cases: &[(&str, &str, &str)] = &[
            ("\"ok\":true,", "\"ok\":false,", "ok"),
            ("\"uptime_seconds\":12.5,", "", "uptime_seconds"),
            ("\"admit_failures\":0,", "", "admit_failures"),
            ("\"trace_events_dropped\":0,", "", "trace_events_dropped"),
            ("\"hit_rate\":0.55", "\"hit_rate\":2.0", "outside"),
            ("\"ticks\":3", "\"ticks\":0", "sampler never ran"),
            (
                "\"pool_queue_depth\":{\"latest\":4.0,\"window_min\":1.0,\
                 \"window_max\":9.0,\"samples\":3},",
                "",
                "pool_queue_depth",
            ),
            ("\"samples\":3}}}}", "\"samples\":0}}}}", "no samples"),
            ("\"serve_swap\":{\"nanos\":20,\"calls\":1}", "\"serve_swap\":{\"nanos\":20}", "calls"),
            (
                "\"best\":{\"count\":12,\"p50_ns\":9000,\"p90_ns\":21000,\
                 \"p99_ns\":45000,\"mean_ns\":14000.5}",
                "\"best\":{\"count\":12}",
                "p50_ns",
            ),
        ];
        for (from, to, expect) in cases {
            let mutated = base.replace(from, to);
            assert_ne!(mutated, base, "mutation {from:?} did not apply");
            let err = check_serve_stats_document(&mutated)
                .expect_err(&format!("mutation {from:?} should invalidate the document"));
            assert!(err.contains(expect), "mutation {from:?}: error {err:?} lacks {expect:?}");
        }
    }

    #[test]
    fn rejects_v2_specific_omissions() {
        // An old v1 document must be rejected by its schema tag alone.
        assert!(check_scale_document("{\"schema\":\"linkclust-bench-scale/v1\"}")
            .unwrap_err()
            .contains("schema"));
        let no_flag = doc(&[rung("gnm", 1000, true)])
            .replace("\"parallel_speedup_positive_at_largest_rung\":false,", "");
        assert!(check_scale_document(&no_flag)
            .unwrap_err()
            .contains("parallel_speedup_positive_at_largest_rung"));
        let no_quota = doc(&[rung("gnm", 1000, true)]).replace("\"cgroup_quota_cores\":null,", "");
        assert!(check_scale_document(&no_quota).unwrap_err().contains("cgroup_quota_cores"));
        let no_exceed =
            doc(&[rung("gnm", 1000, true)]).replace(",\"threads_exceed_cores\":true", "");
        assert!(check_scale_document(&no_exceed).unwrap_err().contains("threads_exceed_cores"));
        let no_rung_flag =
            doc(&[rung("gnm", 1000, true).replace("\"parallel_speedup_positive\":false,", "")]);
        assert!(check_scale_document(&no_rung_flag)
            .unwrap_err()
            .contains("parallel_speedup_positive"));
        let no_phases = doc(&[rung("gnm", 1000, true)
            .replace(",\"phases\":{\"init_ms\":1.1,\"sort_ms\":0.2,\"sweep_ms\":0.9}", "")]);
        assert!(check_scale_document(&no_phases).unwrap_err().contains("phases"));
        // A quota-limited runner reporting cgroup_quota_cores as a
        // number and every speedup flag false still validates: honesty
        // is not a gate failure.
        let quota = doc(&[rung("gnm", 1000, true)])
            .replace("\"cgroup_quota_cores\":null", "\"cgroup_quota_cores\":0.5");
        assert!(check_scale_document(&quota).is_ok());
    }
}
