//! Noise-aware comparison of two same-schema benchmark artifacts
//! (`cargo xtask bench-diff OLD NEW`).
//!
//! Reads two `BENCH_*.json` documents, extracts the comparable metrics
//! for their (shared) schema, and flags regressions with two guards
//! against benchmark noise: a *relative* threshold (default: new must
//! exceed old by more than 25%) and an *absolute* floor per metric
//! family (sub-floor deltas never count, however large the ratio — a
//! 0.1 ms rung that doubles is still noise). Verdicts are written as a
//! machine-readable `linkclust-bench-diff/v1` document and the command
//! exits non-zero when any metric regressed, so CI can run it as an
//! advisory job over artifacts from the base and head commits.
//!
//! Supported artifact schemas:
//!
//! * `linkclust-bench-scale/v2` — per rung (family, tier) and thread
//!   count: `min_ms` (the noise-resistant best-of-N).
//! * `linkclust-bench-serve/v1` — per query kind: `p50_ns` and
//!   `p99_ns`; the answer-cache hit rate regresses on an absolute drop
//!   of more than 0.10.

use std::path::Path;

use crate::tracecheck::{parse, Json};

/// Relative slowdown required before a latency metric counts as a
/// regression (new > old × this).
const DEFAULT_THRESHOLD: f64 = 1.25;

/// Absolute floor for `min_ms` metrics: deltas below this many
/// milliseconds are noise regardless of ratio.
const FLOOR_MS: f64 = 0.5;

/// Absolute floor for `*_ns` metrics: deltas below this many
/// nanoseconds are noise regardless of ratio (scheduler jitter alone
/// exceeds this on a loaded runner).
const FLOOR_NS: f64 = 10_000.0;

/// Absolute drop in the answer-cache hit rate that counts as a
/// regression.
const HIT_RATE_DROP: f64 = 0.10;

/// One compared metric.
#[derive(Debug)]
struct MetricDiff {
    /// Stable metric path, e.g. `gnm/tier1000/t4/min_ms`.
    name: String,
    old: f64,
    new: f64,
    /// Whether this metric regressed under the noise guards.
    regressed: bool,
}

/// The outcome of one artifact comparison.
#[derive(Debug)]
pub(crate) struct DiffReport {
    /// The shared artifact schema tag.
    artifact_schema: String,
    /// The relative threshold the comparison ran with.
    threshold: f64,
    metrics: Vec<MetricDiff>,
}

impl DiffReport {
    /// Metrics that regressed.
    fn regressions(&self) -> impl Iterator<Item = &MetricDiff> {
        self.metrics.iter().filter(|m| m.regressed)
    }

    /// Renders the verdict document (`linkclust-bench-diff/v1`).
    fn to_json(&self) -> String {
        let count = self.regressions().count();
        let mut out = String::from("{\"schema\":\"linkclust-bench-diff/v1\",\"artifact_schema\":");
        push_json_str(&mut out, &self.artifact_schema);
        out.push_str(",\"threshold\":");
        push_f64(&mut out, self.threshold);
        out.push_str(",\"regressions\":");
        out.push_str(&count.to_string());
        out.push_str(",\"ok\":");
        out.push_str(if count == 0 { "true" } else { "false" });
        out.push_str(",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &m.name);
            out.push_str(",\"old\":");
            push_f64(&mut out, m.old);
            out.push_str(",\"new\":");
            push_f64(&mut out, m.new);
            out.push_str(",\"ratio\":");
            push_f64(&mut out, if m.old > 0.0 { m.new / m.old } else { f64::NAN });
            out.push_str(",\"regressed\":");
            out.push_str(if m.regressed { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

/// Minimal JSON string writer (metric names contain no exotic bytes,
/// but escape defensively anyway).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite number, or `null` for NaN/infinities (strict JSON).
fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

/// `new` regressed over `old` for a higher-is-worse latency metric.
fn latency_regressed(old: f64, new: f64, threshold: f64, floor: f64) -> bool {
    new > old * threshold && (new - old) > floor
}

/// Compares two artifact documents (must share a supported schema).
pub(crate) fn compare(
    old_text: &str,
    new_text: &str,
    threshold: f64,
) -> Result<DiffReport, String> {
    let old = parse(old_text).map_err(|e| format!("OLD: {e}"))?;
    let new = parse(new_text).map_err(|e| format!("NEW: {e}"))?;
    let old_schema = old
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("OLD lacks a string `schema` tag")?
        .to_owned();
    let new_schema =
        new.get("schema").and_then(Json::as_str).ok_or("NEW lacks a string `schema` tag")?;
    if old_schema != new_schema {
        return Err(format!("schema mismatch: OLD is {old_schema:?}, NEW is {new_schema:?}"));
    }
    let metrics = match old_schema.as_str() {
        "linkclust-bench-scale/v2" => compare_scale(&old, &new, threshold)?,
        "linkclust-bench-serve/v1" => compare_serve(&old, &new, threshold)?,
        other => return Err(format!("unsupported artifact schema {other:?}")),
    };
    if metrics.is_empty() {
        return Err("the artifacts share no comparable metrics".to_owned());
    }
    Ok(DiffReport { artifact_schema: old_schema, threshold, metrics })
}

/// Iterates an array-valued field, or empty for anything else.
fn arr<'a>(doc: &'a Json, key: &str) -> &'a [Json] {
    match doc.get(key) {
        Some(Json::Arr(items)) => items,
        _ => &[],
    }
}

/// Scale-ladder metrics: per (family, tier, threads), `min_ms`.
fn compare_scale(old: &Json, new: &Json, threshold: f64) -> Result<Vec<MetricDiff>, String> {
    let rung_key = |r: &Json| -> Option<(String, u64)> {
        Some((
            r.get("family").and_then(Json::as_str)?.to_owned(),
            r.get("tier").and_then(Json::as_index)?,
        ))
    };
    let mut metrics = Vec::new();
    for old_rung in arr(old, "rungs") {
        let Some(key) = rung_key(old_rung) else {
            return Err("OLD has a rung without family/tier".to_owned());
        };
        let Some(new_rung) = arr(new, "rungs").iter().find(|r| rung_key(r).as_ref() == Some(&key))
        else {
            continue; // rung only in OLD: nothing to compare
        };
        for old_sample in arr(old_rung, "threads") {
            let Some(threads) = old_sample.get("threads").and_then(Json::as_index) else {
                continue;
            };
            let new_sample = arr(new_rung, "threads")
                .iter()
                .find(|s| s.get("threads").and_then(Json::as_index) == Some(threads));
            let (Some(old_min), Some(new_min)) = (
                old_sample.get("min_ms").and_then(Json::as_f64),
                new_sample.and_then(|s| s.get("min_ms")).and_then(Json::as_f64),
            ) else {
                continue;
            };
            metrics.push(MetricDiff {
                name: format!("{}/tier{}/t{threads}/min_ms", key.0, key.1),
                old: old_min,
                new: new_min,
                regressed: latency_regressed(old_min, new_min, threshold, FLOOR_MS),
            });
        }
    }
    Ok(metrics)
}

/// Serve-load metrics: per kind `p50_ns`/`p99_ns`, plus the cache hit
/// rate (absolute-drop rule).
fn compare_serve(old: &Json, new: &Json, threshold: f64) -> Result<Vec<MetricDiff>, String> {
    let mut metrics = Vec::new();
    for old_kind in arr(old, "kinds") {
        let Some(name) = old_kind.get("kind").and_then(Json::as_str) else {
            return Err("OLD has a kind without a name".to_owned());
        };
        let Some(new_kind) =
            arr(new, "kinds").iter().find(|k| k.get("kind").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        for quantile in ["p50_ns", "p99_ns"] {
            let (Some(old_q), Some(new_q)) = (
                old_kind.get(quantile).and_then(Json::as_f64),
                new_kind.get(quantile).and_then(Json::as_f64),
            ) else {
                continue;
            };
            metrics.push(MetricDiff {
                name: format!("{name}/{quantile}"),
                old: old_q,
                new: new_q,
                regressed: latency_regressed(old_q, new_q, threshold, FLOOR_NS),
            });
        }
    }
    if let (Some(old_rate), Some(new_rate)) = (
        old.get("cache").and_then(|c| c.get("hit_rate")).and_then(Json::as_f64),
        new.get("cache").and_then(|c| c.get("hit_rate")).and_then(Json::as_f64),
    ) {
        metrics.push(MetricDiff {
            name: "cache/hit_rate".to_owned(),
            old: old_rate,
            new: new_rate,
            regressed: (old_rate - new_rate) > HIT_RATE_DROP,
        });
    }
    Ok(metrics)
}

/// Entry point for `cargo xtask bench-diff OLD NEW [--threshold X]
/// [--out PATH]`. Prints a per-metric summary, writes the verdict
/// document, and fails when any metric regressed.
pub(crate) fn run(root: &Path, args: &[&str]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut out_path = root.join("target").join("bench-diff").join("verdict.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t > 1.0)
                    .ok_or("--threshold needs a finite ratio above 1.0")?;
            }
            "--out" => {
                out_path = it.next().map(std::path::PathBuf::from).ok_or("--out needs a path")?;
            }
            p => paths.push(p),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("usage: cargo xtask bench-diff OLD.json NEW.json [--threshold X] [--out PATH]"
            .to_owned());
    };
    let old_text = std::fs::read_to_string(old_path)
        .map_err(|e| format!("cannot read OLD {old_path}: {e}"))?;
    let new_text = std::fs::read_to_string(new_path)
        .map_err(|e| format!("cannot read NEW {new_path}: {e}"))?;
    let report = compare(&old_text, &new_text, threshold)?;

    for m in &report.metrics {
        let ratio = if m.old > 0.0 { m.new / m.old } else { f64::NAN };
        eprintln!(
            "  {} {:<32} old {:>14.3}  new {:>14.3}  ({ratio:.2}x)",
            if m.regressed { "REGR" } else { " ok " },
            m.name,
            m.old,
            m.new,
        );
    }
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    let regressions: Vec<&MetricDiff> = report.regressions().collect();
    eprintln!(
        "bench-diff: {} metrics compared, {} regressed (threshold {threshold}x), verdict in {}",
        report.metrics.len(),
        regressions.len(),
        out_path.display()
    );
    if regressions.is_empty() {
        Ok(())
    } else {
        let names: Vec<&str> = regressions.iter().map(|m| m.name.as_str()).collect();
        Err(format!("{} metrics regressed: {}", names.len(), names.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal scale document with one gnm rung at two thread counts.
    fn scale_doc(min_1t_ms: f64, min_4t_ms: f64) -> String {
        format!(
            "{{\"schema\":\"linkclust-bench-scale/v2\",\"smoke\":true,\"runs\":3,\
              \"rungs\":[{{\"family\":\"gnm\",\"tier\":1000,\
              \"threads\":[\
              {{\"threads\":1,\"min_ms\":{min_1t_ms},\"mean_ms\":{min_1t_ms}}},\
              {{\"threads\":4,\"min_ms\":{min_4t_ms},\"mean_ms\":{min_4t_ms}}}]}}]}}"
        )
    }

    fn serve_doc(p99_cut_ns: f64, hit_rate: f64) -> String {
        format!(
            "{{\"schema\":\"linkclust-bench-serve/v1\",\
              \"kinds\":[{{\"kind\":\"cut\",\"p50_ns\":9000,\"p99_ns\":{p99_cut_ns}}},\
              {{\"kind\":\"edge\",\"p50_ns\":4000,\"p99_ns\":20000}}],\
              \"cache\":{{\"hits\":1,\"misses\":1,\"hit_rate\":{hit_rate}}}}}"
        )
    }

    #[test]
    fn identical_artifacts_pass() {
        let doc = scale_doc(10.0, 4.0);
        let report = compare(&doc, &doc, DEFAULT_THRESHOLD).expect("comparable");
        assert_eq!(report.regressions().count(), 0);
        assert_eq!(report.metrics.len(), 2);
        assert!(report.to_json().contains("\"ok\":true"));
    }

    #[test]
    fn a_seeded_2x_slowdown_fails() {
        let old = scale_doc(10.0, 4.0);
        let new = scale_doc(20.0, 4.1);
        let report = compare(&old, &new, DEFAULT_THRESHOLD).expect("comparable");
        let regressed: Vec<&str> = report.regressions().map(|m| m.name.as_str()).collect();
        assert_eq!(regressed, vec!["gnm/tier1000/t1/min_ms"], "only the doubled rung regresses");
        assert!(report.to_json().contains("\"ok\":false"));
    }

    #[test]
    fn sub_floor_deltas_are_noise_even_at_large_ratios() {
        // 0.1 ms -> 0.3 ms is 3x but under the 0.5 ms floor: noise.
        let old = scale_doc(0.1, 4.0);
        let new = scale_doc(0.3, 4.0);
        let report = compare(&old, &new, DEFAULT_THRESHOLD).expect("comparable");
        assert_eq!(report.regressions().count(), 0);
    }

    #[test]
    fn serve_quantiles_and_hit_rate_are_compared() {
        let old = serve_doc(45_000.0, 0.6);
        let same = compare(&old, &old, DEFAULT_THRESHOLD).expect("comparable");
        assert_eq!(same.regressions().count(), 0);
        assert_eq!(same.metrics.len(), 5, "2 kinds x 2 quantiles + hit rate");

        let slow = compare(&old, &serve_doc(120_000.0, 0.6), DEFAULT_THRESHOLD).expect("ok");
        let regressed: Vec<&str> = slow.regressions().map(|m| m.name.as_str()).collect();
        assert_eq!(regressed, vec!["cut/p99_ns"]);

        let cold = compare(&old, &serve_doc(45_000.0, 0.4), DEFAULT_THRESHOLD).expect("ok");
        let regressed: Vec<&str> = cold.regressions().map(|m| m.name.as_str()).collect();
        assert_eq!(regressed, vec!["cache/hit_rate"]);
    }

    #[test]
    fn mismatched_or_unknown_schemas_are_rejected() {
        let scale = scale_doc(10.0, 4.0);
        let serve = serve_doc(45_000.0, 0.6);
        assert!(compare(&scale, &serve, DEFAULT_THRESHOLD).unwrap_err().contains("mismatch"));
        let unknown = "{\"schema\":\"linkclust-bench-other/v1\"}";
        assert!(compare(unknown, unknown, DEFAULT_THRESHOLD).unwrap_err().contains("unsupported"));
    }

    #[test]
    fn threshold_is_respected() {
        let old = scale_doc(10.0, 4.0);
        let new = scale_doc(13.0, 4.0); // 1.3x
        assert_eq!(compare(&old, &new, 1.25).expect("ok").regressions().count(), 1);
        assert_eq!(compare(&old, &new, 1.5).expect("ok").regressions().count(), 0);
    }
}
