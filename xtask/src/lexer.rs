//! A minimal token-level Rust lexer with source spans.
//!
//! Shared substrate of the two static-analysis gates: the
//! forbidden-pattern scanner ([`scan`](crate::scan)) and the
//! concurrency/numeric-discipline lint pass ([`lint`](crate::lint)).
//! It is deliberately not a full Rust front end — no parser, no types —
//! but unlike a regex pass it gets the *contexts* right: string and
//! char literals (including raw strings and byte strings), lifetimes
//! vs. char literals, nested block comments, doc comments, and float
//! literals are all recognized as single tokens, so downstream rules
//! never fire on text inside a string or a comment and can report exact
//! line/column positions.

/// What a lexed token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum TokenKind {
    /// An identifier or keyword (`fn`, `Ordering`, `r#async`, ...).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A numeric literal, integer or float, with any suffix.
    Number,
    /// A string literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`, ...
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A `// ...` comment, including `///` and `//!` doc comments.
    LineComment,
    /// A `/* ... */` comment (nesting tracked), including `/** ... */`.
    BlockComment,
    /// Punctuation, with common multi-char operators joined (`::`,
    /// `->`, `==`, `<=`, `..=`, ...).
    Punct,
}

/// One token plus its 1-based source position (byte column).
#[derive(Clone, Debug)]
pub(crate) struct Token {
    /// Token class.
    pub(crate) kind: TokenKind,
    /// The token's exact source text.
    pub(crate) text: String,
    /// 1-based line of the token's first byte.
    pub(crate) line: usize,
    /// 1-based byte column of the token's first byte within its line.
    pub(crate) col: usize,
}

impl Token {
    /// `true` for a numeric literal that is a float: has a fractional
    /// part, an exponent, or an `f32`/`f64` suffix (hex/octal/binary
    /// literals are never floats).
    pub(crate) fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Number {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        if t.contains('.') || t.contains("f32") || t.contains("f64") {
            return true;
        }
        // An exponent is `e`/`E` followed by a digit or sign — a bare
        // `e` inside an integer suffix (`42usize`) is not one.
        t.as_bytes().windows(2).any(|w| {
            matches!(w[0], b'e' | b'E') && (w[1].is_ascii_digit() || matches!(w[1], b'+' | b'-'))
        })
    }

    /// `true` for `///`, `//!`, `/**`, or `/*!` comments.
    pub(crate) fn is_doc_comment(&self) -> bool {
        match self.kind {
            TokenKind::LineComment => self.text.starts_with("///") || self.text.starts_with("//!"),
            TokenKind::BlockComment => {
                (self.text.starts_with("/**") && !self.text.starts_with("/***"))
                    || self.text.starts_with("/*!")
            }
            _ => false,
        }
    }

    /// `true` for any comment token, doc or not.
    pub(crate) fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-char punctuation joined into single tokens, longest first so
/// `<<=` wins over `<<` wins over `<`.
const JOINED_PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `text` into tokens (comments included). Never fails: bytes the
/// lexer cannot classify become single-char [`TokenKind::Punct`] tokens,
/// so a file with exotic syntax degrades gracefully instead of aborting
/// the whole gate.
pub(crate) fn lex(text: &str) -> Vec<Token> {
    Lexer { text, chars: text.char_indices().collect(), i: 0, line: 1, col: 1, out: Vec::new() }
        .run()
}

struct Lexer<'a> {
    text: &'a str,
    /// `(byte offset, char)` pairs of the whole input.
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    i: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars.get(idx).map_or(self.text.len(), |&(b, _)| b)
    }

    /// Consumes chars `[start_i, self.i)` as one token of `kind`,
    /// starting at the recorded `(line, col)`.
    fn emit(&mut self, kind: TokenKind, start_i: usize, line: usize, col: usize) {
        let text = self.text[self.byte_at(start_i)..self.byte_at(self.i)].to_string();
        self.out.push(Token { kind, text, line, col });
    }

    /// Advances one char, updating line/col bookkeeping.
    fn bump(&mut self) {
        if let Some(&(b, c)) = self.chars.get(self.i) {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                // Columns are byte-based so they match editor/`grep -b`
                // offsets for the ASCII-dominated sources we scan.
                self.col += c.len_utf8().max(1);
                let _ = b;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (start_i, line, col) = (self.i, self.line, self.col);
            match c {
                c if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start_i, line, col);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.lex_block_comment();
                    self.emit(TokenKind::BlockComment, start_i, line, col);
                }
                '"' => {
                    self.lex_string_body();
                    self.emit(TokenKind::Str, start_i, line, col);
                }
                '\'' => {
                    let kind = self.lex_char_or_lifetime();
                    self.emit(kind, start_i, line, col);
                }
                c if c.is_ascii_digit() => {
                    self.lex_number();
                    self.emit(TokenKind::Number, start_i, line, col);
                }
                c if c.is_alphabetic() || c == '_' => {
                    if let Some(kind) = self.lex_prefixed_literal() {
                        self.emit(kind, start_i, line, col);
                    } else {
                        while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                            self.bump();
                        }
                        self.emit(TokenKind::Ident, start_i, line, col);
                    }
                }
                _ => {
                    let rest = &self.text[self.byte_at(self.i)..];
                    let joined = JOINED_PUNCTS.iter().find(|p| rest.starts_with(**p));
                    match joined {
                        Some(p) => self.bump_n(p.chars().count()),
                        None => self.bump(),
                    }
                    self.emit(TokenKind::Punct, start_i, line, col);
                }
            }
        }
        self.out
    }

    /// Consumes a `/* ... */` comment with nesting; an unterminated
    /// comment runs to end of input.
    fn lex_block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"..."` body starting at the opening quote; handles
    /// `\` escapes. Unterminated strings run to end of input.
    fn lex_string_body(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump_n(2);
            } else if c == '"' {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw string `r"..."` / `r#"..."#` starting at the `r`
    /// (prefix chars before the hashes already consumed by the caller).
    fn lex_raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.peek(0) {
            self.bump();
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                self.bump_n(hashes);
                return;
            }
        }
    }

    /// At an alphabetic char: if it starts a prefixed literal (`r"`,
    /// `r#"`, `b"`, `b'`, `br"`, `br#"`) consume it and return its kind;
    /// otherwise consume nothing and return `None` (plain ident — raw
    /// identifiers `r#name` land here too and lex as idents).
    fn lex_prefixed_literal(&mut self) -> Option<TokenKind> {
        let c0 = self.peek(0)?;
        let (skip, next) = match (c0, self.peek(1)) {
            ('b', Some('r')) => (2, self.peek(2)),
            ('b' | 'r', n) => (1, n),
            _ => return None,
        };
        match next {
            Some('"') => {
                self.bump_n(skip);
                if c0 == 'b' && skip == 1 {
                    self.lex_string_body();
                } else {
                    self.lex_raw_string_body();
                }
                Some(TokenKind::Str)
            }
            Some('#') if c0 != 'b' || skip == 2 => {
                // `r#...` is a raw string only if hashes lead to a quote
                // (`r#"`); `r#ident` is a raw identifier.
                let mut k = skip;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                if self.peek(k) == Some('"') {
                    self.bump_n(skip);
                    self.lex_raw_string_body();
                    Some(TokenKind::Str)
                } else {
                    None
                }
            }
            Some('\'') if c0 == 'b' && skip == 1 => {
                self.bump(); // the `b`
                self.lex_char_body();
                Some(TokenKind::Char)
            }
            _ => None,
        }
    }

    /// At a `'`: distinguishes a char literal from a lifetime. A literal
    /// is `'\...'` or `'<one char>'`; a lifetime has no closing quote
    /// after its first character.
    fn lex_char_or_lifetime(&mut self) -> TokenKind {
        let is_literal = self.peek(1) == Some('\\') || self.peek(2) == Some('\'');
        if is_literal {
            self.lex_char_body();
            TokenKind::Char
        } else {
            self.bump(); // the quote
            while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            TokenKind::Lifetime
        }
    }

    /// Consumes a `'...'` char body starting at the opening quote.
    fn lex_char_body(&mut self) {
        self.bump(); // opening quote
        if self.peek(0) == Some('\\') {
            self.bump_n(2);
            // Multi-char escapes (`\u{...}`, `\x41`) run to the quote.
            while self.peek(0).is_some_and(|c| c != '\'') {
                self.bump();
            }
            self.bump();
        } else {
            self.bump();
            if self.peek(0) == Some('\'') {
                self.bump();
            }
        }
    }

    /// Consumes a numeric literal: integer/float body, exponent, and any
    /// alphanumeric suffix (`u32`, `f64`, `usize`).
    fn lex_number(&mut self) {
        let radix_prefix = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'));
        if radix_prefix {
            self.bump_n(2);
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
            return;
        }
        let digits = |l: &mut Self| {
            while l.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                l.bump();
            }
        };
        digits(self);
        // A fractional part only if `.` is followed by a digit — `1..n`
        // ranges and `tuple.0.1` accesses stay separate tokens.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            digits(self);
        }
        if matches!(self.peek(0), Some('e' | 'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit()))
        {
            self.bump();
            if matches!(self.peek(0), Some('+' | '-')) {
                self.bump();
            }
            digits(self);
        }
        // Suffix (`u32`, `f64`, `usize`, ...).
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, String)> {
        lex(text).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("fn main() {\n    x::y != z;\n}\n");
        let find = |s: &str| toks.iter().find(|t| t.text == s).unwrap();
        assert_eq!((find("fn").line, find("fn").col), (1, 1));
        assert_eq!((find("main").line, find("main").col), (1, 4));
        assert_eq!((find("::").line, find("::").col), (2, 6));
        assert_eq!(find("::").kind, TokenKind::Punct);
        assert_eq!((find("!=").line, find("!=").col), (2, 10));
        assert_eq!((find("}").line, find("}").col), (3, 1));
    }

    #[test]
    fn strings_and_chars_are_single_tokens() {
        let toks = kinds(r#"let s = "a // not a comment { } \" x"; let c = '{';"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("not a comment")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'{'"));
        // No brace puncts leaked out of the literals.
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Punct && (t == "{" || t == "}")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds("let a = r#\"has \"quotes\" and ## inside\"#; let b = b\"bytes\";");
        let strs: Vec<&String> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("quotes"));
        assert!(strs[1].contains("bytes"));
        // `r#ident` stays an identifier.
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
        let toks = kinds(r"let nl = '\n'; let esc = '\u{1F600}';");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let toks = lex("/* outer /* inner */ still */ code\n/// doc\n//! inner doc\n// plain\n");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.ends_with("still */"));
        assert_eq!(toks[1].text, "code");
        assert!(toks[2].is_doc_comment());
        assert!(toks[3].is_doc_comment());
        assert!(!toks[4].is_doc_comment());
        assert!(toks[4].is_comment());
    }

    #[test]
    fn float_literal_detection() {
        for (text, float) in [
            ("1.5", true),
            ("0.0", true),
            ("1e9", true),
            ("2.5e-3", true),
            ("1.0f64", true),
            ("3f32", true),
            ("42", false),
            ("42u32", false),
            ("7usize", false),
            ("100_isize", false),
            ("0xff", false),
            ("0b101", false),
        ] {
            let toks = lex(text);
            assert_eq!(toks.len(), 1, "{text}");
            assert_eq!(toks[0].is_float_literal(), float, "{text}");
        }
        // Ranges and tuple access do not glue into floats.
        let toks = kinds("for i in 0..10 {} t.0");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(!lex("0..10").iter().any(Token::is_float_literal));
    }

    #[test]
    fn multichar_puncts_join() {
        let toks = kinds("a <= b >= c == d != e && f || g .. h ..= i -> j => k <<= l");
        for p in ["<=", ">=", "==", "!=", "&&", "||", "..", "..=", "->", "=>", "<<="] {
            assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == p), "missing {p}");
        }
    }

    #[test]
    fn unterminated_inputs_do_not_loop() {
        for text in ["\"unterminated", "/* unterminated", "r#\"unterminated", "'"] {
            let _ = lex(text);
        }
    }
}
