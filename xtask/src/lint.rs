//! The concurrency & numeric-discipline lint pass (`cargo xtask lint`).
//!
//! A dependency-free, token-level analyzer (built on [`crate::lexer`])
//! that enforces repo-specific rules clippy cannot express. Five rule
//! families, deny-by-default:
//!
//! * **Atomics-ordering discipline** — `Ordering::{Relaxed, Acquire,
//!   Release, AcqRel, SeqCst}` may only appear in allowlisted modules
//!   ([`ATOMICS_MODULES`]) and every use must carry an adjacent
//!   `// ordering:` justification comment. Relaxed *stores* (the
//!   cross-thread publish idiom) are further restricted to the
//!   documented trace-ring protocol ([`RELAXED_PUBLISH_MODULES`];
//!   see DESIGN.md "trace-ring publish protocol").
//! * **Lock-order analysis** — every `.lock()` acquisition site is
//!   extracted per function, a static lock-acquisition graph is built
//!   across the workspace (including one level of call-graph
//!   propagation), and any cycle — a deadlock schedule waiting to
//!   happen — is denied.
//! * **Float-comparison discipline** — direct comparison operators with
//!   a float-literal operand and any `partial_cmp` use outside approved
//!   modules ([`FLOAT_CMP_MODULES`]) are denied: use `total_cmp` (the
//!   PR 4 signed-zero bug class) or justify with `// float-cmp:`.
//! * **Truncating-cast audit** — bare `as u32`/`as usize`-style
//!   narrowing in the `graph`/`core` hot paths (where u32 vertex/edge
//!   ids silently wrap past 2³²) must be `try_from` or carry a
//!   `// cast:` justification.
//! * **Bare-`thread::spawn` ban** — all thread creation goes through
//!   `parallel::pool`; `thread::spawn`/`thread::Builder` anywhere else
//!   is denied.
//!
//! Pre-existing, human-reviewed sites are pinned by the committed
//! ratchet file `xtask/lint.baseline`: the gate recomputes per-file
//! finding counts and fails on **any** drift — new findings *and* stale
//! pins — so the baseline always matches the tree. Regenerate with
//! `cargo xtask lint --update-baseline` (and review the diff). A single
//! site can alternatively be waived in place with a
//! `// lint: allow(<rule-id>) <reason>` comment on the same or the
//! preceding line. Every finding (pinned or not) is written to
//! `target/lint/findings.txt` so CI can upload the full picture.
//!
//! Test code (`#[cfg(test)]` regions, `tests/`, `benches/`,
//! `examples/`) is exempt, as are `vendor/` and `xtask` itself. The
//! rule catalog with examples lives in VERIFICATION.md.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// Modules allowed to use atomic memory orderings at all. Everything
/// else must go through these abstractions instead of rolling its own
/// atomics.
const ATOMICS_MODULES: &[&str] = &[
    "core::telemetry::trace",
    "core::unionfind",
    "parallel::pool",
    "parallel::ufsweep",
    "bench::alloc",
];

/// Modules allowed to publish with `store(..., Ordering::Relaxed)` —
/// exactly the single-writer trace-ring protocol, where the relaxed
/// slot stores are ordered by the release store of the ring cursor.
const RELAXED_PUBLISH_MODULES: &[&str] = &["core::telemetry::trace"];

/// Modules where direct float comparison is the domain (quality scores,
/// generator weight ranges) and a literal-bound comparison is idiomatic.
const FLOAT_CMP_MODULES: &[&str] = &["core::evaluate", "graph::generate"];

/// Modules allowed to create OS threads.
const SPAWN_MODULES: &[&str] = &["parallel::pool"];

/// Cast targets the truncating-cast audit flags: every one of these can
/// silently drop bits on at least one supported platform.
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// The atomic-ordering variant names rule `atomics-*` matches after
/// `Ordering::`.
const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Comparison operators the float rule inspects.
const CMP_OPS: &[&str] = &["==", "!=", "<", ">", "<=", ">="];

/// Callee names excluded from lock-graph call propagation: ubiquitous
/// std/constructor names that would alias unrelated first-party
/// functions (e.g. every `Box::new` aliasing `WorkerPool::new`, whose
/// spawned worker loop locks on *another* thread). `lock` itself is
/// excluded because acquisition sites are already modeled directly.
const CALL_EXCLUSIONS: &[&str] =
    &["lock", "new", "default", "clone", "drop", "from", "into", "fmt"];

/// One lint finding at a source location.
#[derive(Clone, Debug)]
pub(crate) struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub(crate) file: String,
    /// 1-based line.
    pub(crate) line: usize,
    /// 1-based byte column.
    pub(crate) col: usize,
    /// Stable rule identifier (the baseline key).
    pub(crate) rule: &'static str,
    /// Human-readable explanation.
    pub(crate) message: String,
}

impl Finding {
    fn display(&self) -> String {
        format!("{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// A source position within one file.
#[derive(Clone, Copy, Debug)]
struct Site {
    line: usize,
    col: usize,
}

/// Lock-acquisition facts extracted from one file, later merged into
/// the workspace-wide lock graph.
#[derive(Default, Debug)]
struct LockFacts {
    /// `(fn name, lock class)` — direct acquisitions.
    direct: Vec<(String, String)>,
    /// `(fn name, callee name)` — every call, for transitive closure.
    calls: Vec<(String, String)>,
    /// `(held class, acquired class, site)` — a second lock taken while
    /// the first's guard is live in the same function.
    edges: Vec<(String, String, Site)>,
    /// `(held classes, callee, site)` — a call made under a live guard.
    held_calls: Vec<(Vec<String>, String, Site)>,
}

/// Everything the analyzer produced for one file.
struct FileAnalysis {
    findings: Vec<Finding>,
    locks: LockFacts,
}

/// Derives the logical module path of a workspace-relative file path:
/// `crates/core/src/telemetry/trace.rs` → `core::telemetry::trace`,
/// `src/bin/linkclust.rs` → `linkclust::bin::linkclust`. Inline `mod`
/// blocks are not tracked — the file is the granularity of every
/// allowlist.
fn module_path(rel: &str) -> String {
    let mut parts: Vec<&str> = rel.split('/').collect();
    let file = parts.pop().unwrap_or_default();
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    let mut segs: Vec<&str> = Vec::new();
    if parts.first() == Some(&"crates") {
        segs.extend(parts.iter().skip(1).filter(|s| **s != "src"));
    } else {
        segs.push("linkclust");
        segs.extend(parts.iter().filter(|s| **s != "src"));
    }
    if !matches!(stem, "lib" | "mod" | "main") {
        segs.push(stem);
    }
    segs.join("::")
}

/// `true` if `module` is under the truncating-cast audit (the id-heavy
/// `graph` and `core` hot paths).
fn cast_audited(module: &str) -> bool {
    ["core", "graph"].iter().any(|c| module == *c || module.starts_with(&format!("{c}::")))
}

/// Analyzes one file's source text. `rel` is the workspace-relative
/// path (used in findings and to derive the module for allowlists).
fn analyze_source(rel: &str, text: &str) -> FileAnalysis {
    let module = module_path(rel);
    let tokens = lex(text);

    // Comment text per starting line, for justifications and waivers.
    let mut comments: HashMap<usize, String> = HashMap::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        comments.entry(t.line).or_default().push_str(&t.text);
    }
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

    let mut cx = Cx {
        rel,
        module: &module,
        code,
        comments,
        findings: Vec::new(),
        locks: LockFacts::default(),
    };
    cx.walk();
    FileAnalysis { findings: cx.findings, locks: cx.locks }
}

/// A live lock guard tracked by the per-function scanner.
struct Held {
    class: String,
    /// `Some(depth)` for a `let`-bound guard (lives until its block
    /// closes), `None` for a temporary (lives until the statement ends).
    let_depth: Option<usize>,
}

/// Per-file analysis state.
struct Cx<'a> {
    rel: &'a str,
    module: &'a str,
    code: Vec<&'a Token>,
    comments: HashMap<usize, String>,
    findings: Vec<Finding>,
    locks: LockFacts,
}

impl Cx<'_> {
    /// `true` if a comment containing `marker` sits on `line` or one of
    /// the two lines above it (a trailing or immediately-preceding
    /// justification).
    fn justified(&self, line: usize, marker: &str) -> bool {
        (line.saturating_sub(2)..=line)
            .any(|l| self.comments.get(&l).is_some_and(|c| c.contains(marker)))
    }

    /// `true` if a `// lint: allow(<rule>)` waiver comment sits on
    /// `line` or the line above.
    fn waived(&self, line: usize, rule: &str) -> bool {
        let needle = format!("lint: allow({rule})");
        (line.saturating_sub(1)..=line)
            .any(|l| self.comments.get(&l).is_some_and(|c| c.contains(&needle)))
    }

    fn push(&mut self, t: &Token, rule: &'static str, message: String) {
        if self.waived(t.line, rule) {
            return;
        }
        self.findings.push(Finding {
            file: self.rel.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message,
        });
    }

    fn is(&self, i: usize, text: &str) -> bool {
        self.code.get(i).is_some_and(|t| t.text == text)
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.code.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str())
    }

    #[allow(clippy::too_many_lines)] // one linear pass; splitting it would scatter the state machine
    fn walk(&mut self) {
        let n = self.code.len();
        let mut depth = 0usize;
        let mut test_regions: Vec<usize> = Vec::new();
        let mut pending_test = false;
        let mut fn_stack: Vec<(String, usize)> = Vec::new();
        let mut pending_fn: Option<String> = None;
        let mut held: Vec<Held> = Vec::new();
        let mut stmt_has_let = false;

        let mut i = 0usize;
        while i < n {
            let t = self.code[i];
            // Attributes are consumed whole: their contents are neither
            // code (for the rules) nor braces (for depth tracking).
            if t.text == "#"
                && (self.is(i + 1, "[") || (self.is(i + 1, "!") && self.is(i + 2, "[")))
            {
                let open = if self.is(i + 1, "[") { i + 1 } else { i + 2 };
                let mut j = open + 1;
                let mut brackets = 1usize;
                let mut mentions_test = false;
                while j < n && brackets > 0 {
                    match self.code[j].text.as_str() {
                        "[" => brackets += 1,
                        "]" => brackets -= 1,
                        "test" if self.code[j].kind == TokenKind::Ident => mentions_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if mentions_test {
                    pending_test = true;
                }
                i = j;
                continue;
            }

            let in_test = !test_regions.is_empty();
            match t.text.as_str() {
                "{" => {
                    if pending_test {
                        test_regions.push(depth);
                        pending_test = false;
                        pending_fn = None;
                    } else if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                    stmt_has_let = false;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    while test_regions.last() == Some(&depth) {
                        test_regions.pop();
                    }
                    while fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                        fn_stack.pop();
                    }
                    held.retain(|h| h.let_depth.is_some_and(|d| d <= depth));
                    stmt_has_let = false;
                }
                ";" => {
                    held.retain(|h| h.let_depth.is_some());
                    stmt_has_let = false;
                    // Trait method declarations (`fn f();`) and
                    // attribute-on-item-without-body (`#[cfg(test)] mod t;`)
                    // never get a `{`.
                    pending_fn = None;
                    pending_test = false;
                }
                "let" if t.kind == TokenKind::Ident => stmt_has_let = true,
                "fn" if t.kind == TokenKind::Ident => {
                    if let Some(name) = self.ident_at(i + 1) {
                        pending_fn = Some(name.to_string());
                    }
                }
                _ => {}
            }

            if in_test {
                i += 1;
                continue;
            }

            // --- rule (a): atomics-ordering discipline -----------------
            if t.text == "Ordering"
                && self.is(i + 1, "::")
                && self.ident_at(i + 2).is_some_and(|v| ORDERING_VARIANTS.contains(&v))
            {
                let site = self.code[i + 2];
                let variant = site.text.clone();
                if !ATOMICS_MODULES.contains(&self.module) {
                    self.push(
                        site,
                        "atomics-module",
                        format!(
                            "`Ordering::{variant}` in module `{}`: atomics are restricted to \
                             {ATOMICS_MODULES:?} — use the pool/telemetry abstractions instead",
                            self.module
                        ),
                    );
                } else if !self.justified(site.line, "ordering:") {
                    self.push(
                        site,
                        "atomics-justify",
                        format!(
                            "`Ordering::{variant}` without an adjacent `// ordering:` \
                             justification comment"
                        ),
                    );
                }
            }

            // --- rule (a): relaxed cross-thread publish ----------------
            if t.text == "." && self.is(i + 1, "store") && self.is(i + 2, "(") {
                let mut j = i + 3;
                let mut parens = 1usize;
                let mut relaxed = false;
                while j < n && parens > 0 {
                    match self.code[j].text.as_str() {
                        "(" => parens += 1,
                        ")" => parens -= 1,
                        "Relaxed"
                            if j >= 2 && self.is(j - 1, "::") && self.is(j - 2, "Ordering") =>
                        {
                            relaxed = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if relaxed && !RELAXED_PUBLISH_MODULES.contains(&self.module) {
                    let site = self.code[i + 1];
                    self.push(
                        site,
                        "relaxed-publish",
                        format!(
                            "relaxed store in module `{}`: a cross-thread Relaxed publish is \
                             only sanctioned inside the trace-ring protocol \
                             ({RELAXED_PUBLISH_MODULES:?}) — use Release or a stronger \
                             abstraction",
                            self.module
                        ),
                    );
                }
            }

            // --- rule (b): lock acquisition & call extraction ----------
            if t.text == "." && self.is(i + 1, "lock") && self.is(i + 2, "(") && self.is(i + 3, ")")
            {
                let recv = if i > 0 && self.code[i - 1].kind == TokenKind::Ident {
                    self.code[i - 1].text.clone()
                } else {
                    "expr".to_string()
                };
                let class = format!("{}::{recv}", self.module);
                let site = Site { line: self.code[i + 1].line, col: self.code[i + 1].col };
                let fn_name =
                    fn_stack.last().map_or_else(|| "<file>".to_string(), |(f, _)| f.clone());
                if !self.waived(site.line, "lock-cycle") {
                    for h in &held {
                        self.locks.edges.push((h.class.clone(), class.clone(), site));
                    }
                    self.locks.direct.push((fn_name, class.clone()));
                    held.push(Held { class, let_depth: stmt_has_let.then_some(depth) });
                }
                i += 4;
                continue;
            }
            if t.kind == TokenKind::Ident
                && self.is(i + 1, "(")
                && !matches!(
                    t.text.as_str(),
                    "fn" | "if" | "while" | "for" | "match" | "return" | "loop" | "move"
                )
                && !CALL_EXCLUSIONS.contains(&t.text.as_str())
            {
                if let Some((f, _)) = fn_stack.last() {
                    self.locks.calls.push((f.clone(), t.text.clone()));
                    if !held.is_empty() {
                        let held_classes: Vec<String> =
                            held.iter().map(|h| h.class.clone()).collect();
                        self.locks.held_calls.push((
                            held_classes,
                            t.text.clone(),
                            Site { line: t.line, col: t.col },
                        ));
                    }
                }
            }

            // --- rule (c): float-comparison discipline -----------------
            if t.kind == TokenKind::Punct && CMP_OPS.contains(&t.text.as_str()) {
                let prev_float = i > 0 && self.code[i - 1].is_float_literal();
                let next_float = self.code.get(i + 1).is_some_and(|x| x.is_float_literal())
                    || (self.is(i + 1, "-")
                        && self.code.get(i + 2).is_some_and(|x| x.is_float_literal()));
                if (prev_float || next_float)
                    && !FLOAT_CMP_MODULES.contains(&self.module)
                    && !self.justified(t.line, "float-cmp:")
                {
                    let op = t.text.clone();
                    self.push(
                        t,
                        "float-cmp",
                        format!(
                            "direct float comparison `{op}` with a float-literal operand: \
                             use `total_cmp`/an epsilon, or justify with `// float-cmp:`"
                        ),
                    );
                }
            }
            if t.text == "partial_cmp"
                && t.kind == TokenKind::Ident
                && !FLOAT_CMP_MODULES.contains(&self.module)
                && !self.justified(t.line, "float-cmp:")
            {
                self.push(
                    t,
                    "float-partial-cmp",
                    "`partial_cmp` outside approved modules: NaN makes it partial — \
                     sort/compare floats with `total_cmp` (the PR 4 signed-zero bug class)"
                        .to_string(),
                );
            }

            // --- rule (d): truncating-cast audit -----------------------
            if t.text == "as"
                && t.kind == TokenKind::Ident
                && cast_audited(self.module)
                && self.ident_at(i + 1).is_some_and(|v| NARROWING_TARGETS.contains(&v))
                && !self.justified(t.line, "cast:")
            {
                let target = self.code[i + 1].text.clone();
                self.push(
                    t,
                    "cast-truncate",
                    format!(
                        "bare `as {target}` in an id hot path can silently truncate \
                         (CSR wraps past 2^32 edges): use `try_from` or justify with `// cast:`"
                    ),
                );
            }

            // --- rule (e): bare thread::spawn ban ----------------------
            if t.text == "thread"
                && self.is(i + 1, "::")
                && self.ident_at(i + 2).is_some_and(|v| v == "spawn" || v == "Builder")
                && !SPAWN_MODULES.contains(&self.module)
            {
                let site = self.code[i + 2];
                let what = site.text.clone();
                self.push(
                    site,
                    "bare-spawn",
                    format!(
                        "`thread::{what}` in module `{}`: all thread creation goes through \
                         `parallel::pool::WorkerPool`",
                        self.module
                    ),
                );
            }

            i += 1;
        }
    }
}

/// Builds the workspace lock graph from per-file facts and returns one
/// finding per acquisition cycle.
fn lock_cycle_findings(per_file: &[(String, LockFacts)]) -> Vec<Finding> {
    // Transitive closure of "calling this function may acquire these
    // lock classes", keyed by bare function name (collisions merge —
    // conservative, see CALL_EXCLUSIONS).
    let mut may: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (_, facts) in per_file {
        for (f, class) in &facts.direct {
            may.entry(f.clone()).or_default().insert(class.clone());
        }
        for (f, callee) in &facts.calls {
            calls.entry(f.clone()).or_default().insert(callee.clone());
        }
    }
    loop {
        let mut changed = false;
        for (f, callees) in &calls {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in callees {
                if let Some(s) = may.get(c) {
                    add.extend(s.iter().cloned());
                }
            }
            if !add.is_empty() {
                let entry = may.entry(f.clone()).or_default();
                let before = entry.len();
                entry.extend(add);
                changed |= entry.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set: direct nested acquisitions plus calls-under-guard into
    // functions that may acquire.
    let mut edges: BTreeMap<String, BTreeMap<String, (String, Site)>> = BTreeMap::new();
    for (rel, facts) in per_file {
        for (from, to, site) in &facts.edges {
            edges
                .entry(from.clone())
                .or_default()
                .entry(to.clone())
                .or_insert_with(|| (rel.clone(), *site));
        }
        for (held, callee, site) in &facts.held_calls {
            if let Some(acquired) = may.get(callee) {
                for h in held {
                    for to in acquired {
                        // A call-derived edge back into the held class is
                        // suppressed: with bare-name call matching it is
                        // overwhelmingly a std-method alias (`Vec::push`
                        // vs a locking first-party `push`). Direct
                        // recursive acquisition in one function still
                        // produces a self-loop via `facts.edges` above.
                        if h == to {
                            continue;
                        }
                        edges
                            .entry(h.clone())
                            .or_default()
                            .entry(to.clone())
                            .or_insert_with(|| (rel.clone(), *site));
                    }
                }
            }
        }
    }

    // Enumerate elementary cycles: DFS from each start node, visiting
    // only nodes ≥ start so each cycle is found once, rotated to its
    // smallest node. The graph has a handful of nodes; no need for
    // Johnson's algorithm.
    fn dfs(
        start: &str,
        cur: &str,
        edges: &BTreeMap<String, BTreeMap<String, (String, Site)>>,
        path: &mut Vec<String>,
        cycles: &mut BTreeSet<Vec<String>>,
    ) {
        let Some(nexts) = edges.get(cur) else { return };
        for next in nexts.keys() {
            if next == start {
                cycles.insert(path.clone());
            } else if next.as_str() > start && !path.contains(next) && path.len() < 32 {
                path.push(next.clone());
                dfs(start, next, edges, path, cycles);
                path.pop();
            }
        }
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in edges.keys() {
        let mut path = vec![start.clone()];
        dfs(start, start, &edges, &mut path, &mut cycles);
    }

    let mut findings = Vec::new();
    for cycle in cycles {
        let mut route = String::new();
        for c in &cycle {
            let _ = write!(route, "{c} -> ");
        }
        let _ = write!(route, "{}", cycle[0]);
        let mut sites = String::new();
        for (a, b) in cycle.iter().zip(cycle.iter().cycle().skip(1)) {
            if let Some((rel, site)) = edges.get(a).and_then(|m| m.get(b)) {
                let _ = write!(sites, " [{a} -> {b} at {rel}:{}:{}]", site.line, site.col);
            }
        }
        let (file, site) = edges
            .get(&cycle[0])
            .and_then(|m| m.get(cycle.get(1).unwrap_or(&cycle[0])))
            .cloned()
            .unwrap_or_else(|| (String::from("<workspace>"), Site { line: 1, col: 1 }));
        findings.push(Finding {
            file,
            line: site.line,
            col: site.col,
            rule: "lock-cycle",
            message: format!(
                "potential deadlock: lock-acquisition cycle {route} —{sites}; break the cycle \
                 or restructure so one lock is never held across the other"
            ),
        });
    }
    findings
}

/// Collects the lintable `.rs` files: `crates/*/src/**` plus the root
/// `src/**` (the same roots the forbidden-pattern scanner covers).
fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// The committed ratchet file, relative to the workspace root.
const BASELINE_PATH: &str = "xtask/lint.baseline";

/// Parses the baseline file: `<rule> <path> <count>` lines, `#` comments.
fn parse_baseline(text: &str) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut map = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(rule), Some(path), Some(count), None) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            return Err(format!("{BASELINE_PATH}:{}: expected `<rule> <path> <count>`", idx + 1));
        };
        let count: usize =
            count.parse().map_err(|e| format!("{BASELINE_PATH}:{}: bad count: {e}", idx + 1))?;
        if map.insert((rule.to_string(), path.to_string()), count).is_some() {
            return Err(format!("{BASELINE_PATH}:{}: duplicate entry", idx + 1));
        }
    }
    Ok(map)
}

/// Serializes per-(rule, file) counts as the baseline file.
fn format_baseline(counts: &BTreeMap<(String, String), usize>) -> String {
    let mut out = String::new();
    out.push_str(
        "# Lint ratchet baseline — pins the human-reviewed, pre-existing findings of\n\
         # `cargo xtask lint` per (rule, file). The gate fails on ANY drift, in either\n\
         # direction; after reviewing, regenerate with:\n\
         #\n\
         #     cargo xtask lint --update-baseline\n\
         #\n\
         # Prefer shrinking these counts (fix the site or add an inline justification\n\
         # comment) over growing them. Rule catalog: VERIFICATION.md.\n",
    );
    for ((rule, path), count) in counts {
        let _ = writeln!(out, "{rule} {path} {count}");
    }
    out
}

/// The outcome of a full workspace lint run, before baseline comparison.
struct LintRun {
    findings: Vec<Finding>,
    files_scanned: usize,
}

/// Lints every first-party file and appends the workspace-level
/// lock-cycle findings.
fn lint_workspace(root: &Path) -> std::io::Result<LintRun> {
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    let mut lock_facts: Vec<(String, LockFacts)> = Vec::new();
    let files_scanned = files.len();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&file)?;
        let analysis = analyze_source(&rel, &text);
        findings.extend(analysis.findings);
        lock_facts.push((rel, analysis.locks));
    }
    findings.extend(lock_cycle_findings(&lock_facts));
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(LintRun { findings, files_scanned })
}

/// Groups findings by `(rule, file)`.
fn count_by_key(findings: &[Finding]) -> BTreeMap<(String, String), usize> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts.entry((f.rule.to_string(), f.file.clone())).or_default() += 1;
    }
    counts
}

/// Writes the full findings list (pinned and new) to
/// `target/lint/findings.txt` so CI can upload it as an artifact.
fn write_artifact(root: &Path, run: &LintRun, baseline: &BTreeMap<(String, String), usize>) {
    let dir = root.join("target").join("lint");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut out = String::new();
    let counts = count_by_key(&run.findings);
    let _ = writeln!(
        out,
        "# cargo xtask lint — {} findings across {} files ({} (rule, file) keys, {} pinned)",
        run.findings.len(),
        run.files_scanned,
        counts.len(),
        counts.iter().filter(|(k, v)| baseline.get(*k) == Some(v)).count(),
    );
    for f in &run.findings {
        let key = (f.rule.to_string(), f.file.clone());
        let status = if baseline.get(&key).copied().unwrap_or(0) > 0 { "pinned" } else { "NEW" };
        let _ = writeln!(out, "{status:<6} {}", f.display());
    }
    let _ = fs::write(dir.join("findings.txt"), out);
}

/// Runs the lint gate: analyze, compare against the committed baseline,
/// fail on any drift. This is what `cargo xtask lint` (and the `lint`
/// gate of `check`/`fast`) executes.
pub(crate) fn run_gate(root: &Path) -> Result<(), String> {
    let run = lint_workspace(root).map_err(|e| format!("lint I/O error: {e}"))?;
    let baseline_text = fs::read_to_string(root.join(BASELINE_PATH)).unwrap_or_default();
    let baseline = parse_baseline(&baseline_text)?;
    write_artifact(root, &run, &baseline);

    let counts = count_by_key(&run.findings);
    let mut drift: Vec<String> = Vec::new();
    let mut new_findings = 0usize;
    for (key, &actual) in &counts {
        let pinned = baseline.get(key).copied().unwrap_or(0);
        if actual > pinned {
            new_findings += actual - pinned;
            drift.push(format!(
                "{} [{}]: {actual} findings, {pinned} pinned — new violations:",
                key.1, key.0
            ));
            for f in run.findings.iter().filter(|f| f.rule == key.0 && f.file == key.1) {
                drift.push(format!("    {}", f.display()));
            }
        } else if actual < pinned {
            drift.push(format!(
                "{} [{}]: {actual} findings but {pinned} pinned — stale baseline \
                 (you fixed sites: ratchet down with `cargo xtask lint --update-baseline`)",
                key.1, key.0
            ));
        }
    }
    for (key, &pinned) in &baseline {
        if !counts.contains_key(key) {
            drift.push(format!(
                "{} [{}]: 0 findings but {pinned} pinned — stale baseline \
                 (ratchet down with `cargo xtask lint --update-baseline`)",
                key.1, key.0
            ));
        }
    }

    eprintln!(
        "lint: {} files, {} findings ({} pinned by {}), {} drift entries",
        run.files_scanned,
        run.findings.len(),
        run.findings.len() - new_findings,
        BASELINE_PATH,
        drift.len(),
    );
    if drift.is_empty() {
        Ok(())
    } else {
        for d in &drift {
            eprintln!("{d}");
        }
        Err(format!(
            "{} baseline drift entries — fix the new sites (or justify them in place) and/or \
             regenerate the ratchet with `cargo xtask lint --update-baseline` after review",
            drift.len()
        ))
    }
}

/// Regenerates the committed baseline from the current tree
/// (`cargo xtask lint --update-baseline`). The diff is the review
/// artifact: growing counts need a justification in the PR.
pub(crate) fn run_update(root: &Path) -> Result<(), String> {
    let run = lint_workspace(root).map_err(|e| format!("lint I/O error: {e}"))?;
    let counts = count_by_key(&run.findings);
    fs::write(root.join(BASELINE_PATH), format_baseline(&counts))
        .map_err(|e| format!("cannot write {BASELINE_PATH}: {e}"))?;
    write_artifact(root, &run, &counts);
    eprintln!(
        "lint: baseline regenerated at {BASELINE_PATH}: {} findings across {} (rule, file) keys \
         — review the diff before committing",
        run.findings.len(),
        counts.len(),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shorthand: analyze fixture text under a given module path.
    fn findings(rel: &str, text: &str) -> Vec<Finding> {
        analyze_source(rel, text).findings
    }

    fn rules(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn module_paths_derive_from_file_paths() {
        assert_eq!(module_path("crates/core/src/telemetry/trace.rs"), "core::telemetry::trace");
        assert_eq!(module_path("crates/parallel/src/pool.rs"), "parallel::pool");
        assert_eq!(module_path("crates/graph/src/lib.rs"), "graph");
        assert_eq!(module_path("src/lib.rs"), "linkclust");
        assert_eq!(module_path("src/bin/linkclust.rs"), "linkclust::bin::linkclust");
        assert!(cast_audited("core::flatacc"));
        assert!(cast_audited("graph"));
        assert!(!cast_audited("bench::alloc"));
        assert!(!cast_audited("corpus::stats"));
    }

    // ---- rule family (a): atomics-ordering discipline ----------------

    #[test]
    fn atomics_rules_fire_on_the_seeded_fixture() {
        let text = include_str!("../fixtures/lint/atomics.rs");
        // In a non-allowlisted module every use is a module violation.
        let fs = findings("crates/core/src/fixture.rs", text);
        assert!(fs.iter().filter(|f| f.rule == "atomics-module").count() >= 3, "{fs:?}");
        // In an allowlisted module the unjustified sites and the relaxed
        // publish are what fire.
        let fs = findings("crates/parallel/src/pool.rs", text);
        let rs = rules(&fs);
        assert!(rs.contains(&"atomics-justify"), "{fs:?}");
        assert!(rs.contains(&"relaxed-publish"), "{fs:?}");
        assert!(!rs.contains(&"atomics-module"), "{fs:?}");
        // The justified load in the fixture does not fire.
        assert!(
            !fs.iter().any(|f| f.rule == "atomics-justify" && f.line == 8),
            "justified site must not fire: {fs:?}"
        );
    }

    #[test]
    fn relaxed_publish_is_sanctioned_only_in_the_trace_ring() {
        let text = "fn f(x: &AtomicU64) { x.store(1, Ordering::Relaxed); // ordering: test\n}\n";
        let fs = findings("crates/core/src/telemetry/trace.rs", text);
        assert!(rules(&fs).is_empty(), "{fs:?}");
        let fs = findings("crates/bench/src/alloc.rs", text);
        assert_eq!(rules(&fs), vec!["relaxed-publish"], "{fs:?}");
    }

    #[test]
    fn atomics_in_strings_comments_and_tests_are_exempt() {
        let text = "// Ordering::SeqCst in a comment\nfn f() { let s = \"Ordering::SeqCst\"; }\n";
        assert!(findings("crates/core/src/x.rs", text).is_empty());
        let text = "#[cfg(test)]\nmod tests {\n    fn f(x: &AtomicU64) -> u64 { \
                    x.load(Ordering::SeqCst) }\n}\n";
        assert!(findings("crates/core/src/x.rs", text).is_empty());
    }

    // ---- rule family (b): lock-order analysis ------------------------

    #[test]
    fn lock_cycle_fires_on_the_seeded_fixture() {
        let text = include_str!("../fixtures/lint/lock_order.rs");
        let analysis = analyze_source("crates/core/src/fixture.rs", text);
        let cycles =
            lock_cycle_findings(&[("crates/core/src/fixture.rs".to_string(), analysis.locks)]);
        assert!(!cycles.is_empty(), "the AB/BA fixture must produce a cycle");
        assert!(cycles.iter().all(|f| f.rule == "lock-cycle"));
        assert!(cycles[0].message.contains("alpha"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("beta"), "{}", cycles[0].message);
    }

    #[test]
    fn lock_cycle_fires_across_function_calls() {
        // `outer` holds alpha and calls a helper that locks beta;
        // `other` holds beta and calls a helper that locks alpha.
        let text = "fn outer(&self) { let a = self.alpha.lock(); self.grab_beta(); }\n\
                    fn grab_beta(&self) { let b = self.beta.lock(); }\n\
                    fn other(&self) { let b = self.beta.lock(); self.grab_alpha(); }\n\
                    fn grab_alpha(&self) { let a = self.alpha.lock(); }\n";
        let analysis = analyze_source("crates/core/src/fx.rs", text);
        let cycles = lock_cycle_findings(&[("crates/core/src/fx.rs".to_string(), analysis.locks)]);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].message.contains("potential deadlock"));
    }

    #[test]
    fn ordered_lock_acquisition_is_clean() {
        // Consistent A-then-B order everywhere: no cycle.
        let text = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                    fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n";
        let analysis = analyze_source("crates/core/src/fx.rs", text);
        let cycles = lock_cycle_findings(&[("crates/core/src/fx.rs".to_string(), analysis.locks)]);
        assert!(cycles.is_empty(), "{cycles:?}");
    }

    #[test]
    fn guard_scope_ends_with_its_block_or_statement() {
        // Guards dropped before the second lock: no edge, no cycle.
        let text = "fn f(&self) { { let a = self.alpha.lock(); } let b = self.beta.lock(); }\n\
                    fn g(&self) { { let b = self.beta.lock(); } let a = self.alpha.lock(); }\n\
                    fn h(&self) { self.alpha.lock().x(); self.beta.lock().y(); }\n\
                    fn i(&self) { self.beta.lock().y(); self.alpha.lock().x(); }\n";
        let analysis = analyze_source("crates/core/src/fx.rs", text);
        assert!(analysis.locks.edges.is_empty(), "{:?}", analysis.locks.edges);
    }

    // ---- rule family (c): float-comparison discipline ----------------

    #[test]
    fn float_rules_fire_on_the_seeded_fixture() {
        let text = include_str!("../fixtures/lint/float_cmp.rs");
        let fs = findings("crates/core/src/fixture.rs", text);
        let rs = rules(&fs);
        assert!(rs.contains(&"float-cmp"), "{fs:?}");
        assert!(rs.contains(&"float-partial-cmp"), "{fs:?}");
        // The justified comparison and the integer comparison are clean.
        assert_eq!(rs.iter().filter(|r| **r == "float-cmp").count(), 2, "{fs:?}");
        // Approved modules are exempt wholesale.
        assert!(findings("crates/core/src/evaluate.rs", text).is_empty());
    }

    #[test]
    fn negative_float_literals_and_both_sides_are_caught() {
        let fs = findings("crates/core/src/x.rs", "fn f(x: f64) -> bool { x > -0.5 }\n");
        assert_eq!(rules(&fs), vec!["float-cmp"]);
        let fs = findings("crates/core/src/x.rs", "fn f(x: f64) -> bool { 0.5 <= x }\n");
        assert_eq!(rules(&fs), vec!["float-cmp"]);
        // Integer comparisons never fire.
        assert!(findings("crates/core/src/x.rs", "fn f(x: u32) -> bool { x > 5 }\n").is_empty());
    }

    // ---- rule family (d): truncating-cast audit ----------------------

    #[test]
    fn cast_rule_fires_on_the_seeded_fixture() {
        let text = include_str!("../fixtures/lint/casts.rs");
        let fs = findings("crates/graph/src/fixture.rs", text);
        // Two bare narrowing casts; the justified one and the widening
        // `as u64`/`as f64` are clean.
        assert_eq!(rules(&fs), vec!["cast-truncate", "cast-truncate"], "{fs:?}");
        // Outside the audited crates the rule is silent.
        assert!(findings("crates/bench/src/fixture.rs", text).is_empty());
    }

    // ---- rule family (e): bare thread::spawn ban ---------------------

    #[test]
    fn spawn_ban_fires_on_the_seeded_fixture() {
        let text = include_str!("../fixtures/lint/spawn.rs");
        let fs = findings("crates/core/src/fixture.rs", text);
        assert_eq!(rules(&fs), vec!["bare-spawn", "bare-spawn"], "{fs:?}");
        // The pool module is the sanctioned home of thread creation.
        assert!(findings("crates/parallel/src/pool.rs", text).is_empty());
    }

    // ---- clean fixture, waivers, baseline ----------------------------

    #[test]
    fn clean_fixture_produces_zero_findings() {
        let text = include_str!("../fixtures/lint/clean.rs");
        let analysis = analyze_source("crates/parallel/src/pool.rs", text);
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        let cycles =
            lock_cycle_findings(&[("crates/parallel/src/pool.rs".to_string(), analysis.locks)]);
        assert!(cycles.is_empty(), "{cycles:?}");
    }

    #[test]
    fn inline_waiver_suppresses_a_single_site() {
        let text = "fn f(n: usize) -> u32 {\n    // lint: allow(cast-truncate) bounded by caller\n\
                    \x20   n as u32\n}\nfn g(n: usize) -> u32 { n as u32 }\n";
        let fs = findings("crates/graph/src/x.rs", text);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 5);
    }

    #[test]
    fn baseline_roundtrip_and_drift() {
        let mut counts = BTreeMap::new();
        counts.insert(("cast-truncate".to_string(), "crates/graph/src/csr.rs".to_string()), 16);
        counts.insert(("float-cmp".to_string(), "crates/core/src/model.rs".to_string()), 6);
        let text = format_baseline(&counts);
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed, counts);
        assert!(parse_baseline("bad line here extra").is_err());
        assert!(parse_baseline("rule path notanumber").is_err());
        assert!(parse_baseline("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn findings_carry_line_and_column() {
        let fs = findings("crates/core/src/x.rs", "fn f(n: usize) -> u32 {\n    n as u32\n}\n");
        assert_eq!(fs.len(), 1);
        assert_eq!((fs[0].line, fs[0].col), (2, 7));
        assert!(fs[0].display().contains("crates/core/src/x.rs:2:7"));
    }
}
