//! The workspace verification harness (`cargo xtask <command>`).
//!
//! `cargo xtask check` is the single entry point CI and contributors run:
//! it drives rustfmt, clippy (with the workspace lint tables of the root
//! `Cargo.toml`), the documentation build, the forbidden-pattern scanner
//! (see [`scan`]), the concurrency & numeric-discipline lint pass with
//! its ratchet file (see [`lint`]), a traced-CLI smoke run whose Chrome
//! trace artifact is structurally validated (see [`tracecheck`]), and
//! the full test suite, then prints a pass/fail summary. Every step is
//! also available as its own subcommand so a failing gate can be re-run
//! in isolation.
//!
//! The policy the harness enforces is documented in `VERIFICATION.md` at
//! the workspace root.

mod benchcheck;
mod benchdiff;
mod lexer;
mod lint;
mod metricscheck;
mod scan;
mod tracecheck;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::Instant;

/// One verification gate: a name, a human description, and a runner.
struct Gate {
    name: &'static str,
    description: &'static str,
    run: fn(&Path) -> Result<(), String>,
}

const GATES: &[Gate] = &[
    Gate { name: "fmt", description: "rustfmt (check mode)", run: run_fmt },
    Gate { name: "clippy", description: "clippy with the workspace lint tables", run: run_clippy },
    Gate { name: "doc", description: "rustdoc with warnings denied", run: run_doc },
    Gate { name: "scan", description: "forbidden-pattern scanner", run: run_scan },
    Gate {
        name: "lint",
        description: "concurrency & numeric-discipline lint (ratchet: xtask/lint.baseline)",
        run: lint::run_gate,
    },
    Gate {
        name: "bench-build",
        description: "benchmarks compile (--no-run)",
        run: run_bench_build,
    },
    Gate {
        name: "trace-smoke",
        description: "traced CLI run produces valid Chrome trace JSON",
        run: run_trace_smoke,
    },
    Gate {
        name: "serve-smoke",
        description: "linkclustd answers every query kind over a socket; artifact schema-validated",
        run: run_serve_smoke,
    },
    Gate {
        name: "metrics-smoke",
        description: "linkclustd --metrics-port serves valid Prometheus exposition over HTTP",
        run: run_metrics_smoke,
    },
    Gate { name: "test", description: "full test suite", run: run_test },
];

fn main() -> ExitCode {
    let root = workspace_root();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map_or("check", String::as_str);
    match command {
        "check" => run_gates(&root, GATES),
        "fast" => {
            // Everything except the test suite — the quick pre-commit loop.
            run_gates(&root, &GATES[..GATES.len() - 1])
        }
        "bench-smoke" => {
            // Build and run the smoke benchmark; writes BENCH_parallel.json
            // and the init A/B BENCH_init.json at the workspace root (see
            // `--help` of the binary for flags).
            let extra: Vec<&str> =
                args.iter().skip(1).map(String::as_str).filter(|a| *a != "--").collect();
            match run_bench_smoke(&root, &extra) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("bench-smoke failed: {msg}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench-ladder" => {
            // Build and run the scale ladder (pass `--smoke` for the
            // two smallest tiers per family — the CI gate), then
            // schema-validate the BENCH_scale.json it wrote.
            let extra: Vec<&str> =
                args.iter().skip(1).map(String::as_str).filter(|a| *a != "--").collect();
            match run_bench_ladder(&root, &extra) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("bench-ladder failed: {msg}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench-serve" => {
            // Build the daemon, run the serve load benchmark (pass
            // `--smoke` for the short CI-sized run), then schema-validate
            // the BENCH_serve.json it wrote. A full run must push 100k
            // queries through the socket.
            let extra: Vec<&str> =
                args.iter().skip(1).map(String::as_str).filter(|a| *a != "--").collect();
            match run_bench_serve(&root, &extra) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("bench-serve failed: {msg}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench-diff" => {
            // Compare two same-schema BENCH_*.json artifacts with
            // noise-aware thresholds; exits non-zero on regression.
            let extra: Vec<&str> =
                args.iter().skip(1).map(String::as_str).filter(|a| *a != "--").collect();
            match benchdiff::run(&root, &extra) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("bench-diff failed: {msg}");
                    ExitCode::FAILURE
                }
            }
        }
        "lint" if args.iter().any(|a| a == "--update-baseline") => {
            // Regenerate the ratchet file from the current tree; the
            // resulting diff of xtask/lint.baseline is the review artifact.
            match lint::run_update(&root) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("lint --update-baseline failed: {msg}");
                    ExitCode::FAILURE
                }
            }
        }
        name => {
            if let Some(gate) = GATES.iter().find(|g| g.name == name) {
                run_gates(&root, std::slice::from_ref(gate))
            } else {
                eprintln!("unknown command `{name}`\n");
                print_usage();
                ExitCode::FAILURE
            }
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask [command]\n");
    eprintln!("commands:");
    eprintln!("  check   run every gate (the default; CI entry point)");
    eprintln!("  fast    every gate except the test suite");
    for g in GATES {
        eprintln!("  {:<7} {}", g.name, g.description);
    }
    eprintln!(
        "  bench-smoke  run the fixed-seed smoke benchmark (writes BENCH_parallel.json + BENCH_init.json)"
    );
    eprintln!(
        "  bench-ladder run the scale ladder and schema-validate BENCH_scale.json (`--smoke` for the CI gate, `--check-only` to validate an existing artifact without running)"
    );
    eprintln!(
        "  bench-serve  run the serve load benchmark and schema-validate BENCH_serve.json (`--smoke` for the CI-sized run, `--check-only` to validate an existing artifact without running)"
    );
    eprintln!(
        "  bench-diff   compare two same-schema BENCH_*.json artifacts for perf regressions (`--threshold X` relative ratio, `--out PATH` for the verdict document; exits non-zero on regression)"
    );
    eprintln!(
        "  lint --update-baseline  regenerate xtask/lint.baseline from the tree (review the diff)"
    );
}

/// Runs the given gates in order, printing a summary; keeps going after a
/// failure so one run reports every broken gate.
fn run_gates(root: &Path, gates: &[Gate]) -> ExitCode {
    let mut failures = Vec::new();
    let mut summary = Vec::new();
    for gate in gates {
        eprintln!("==> xtask {} ({})", gate.name, gate.description);
        let start = Instant::now();
        let result = (gate.run)(root);
        let secs = start.elapsed().as_secs_f64();
        match result {
            Ok(()) => summary.push(format!("  ok   {:<7} {secs:7.1}s", gate.name)),
            Err(msg) => {
                summary.push(format!("  FAIL {:<7} {secs:7.1}s", gate.name));
                failures.push(format!("{}: {msg}", gate.name));
            }
        }
    }
    eprintln!("\nxtask summary:");
    for line in &summary {
        eprintln!("{line}");
    }
    if failures.is_empty() {
        eprintln!("\nall gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!();
        for f in &failures {
            eprintln!("failed gate -- {f}");
        }
        ExitCode::FAILURE
    }
}

/// The workspace root: the parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().expect("xtask lives one level below the workspace root").to_path_buf()
}

/// Runs `cargo <args>` at the workspace root, mapping a non-zero exit to
/// an error message.
fn cargo(root: &Path, args: &[&str], envs: &[(&str, &str)]) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(root).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let status = cmd.status().map_err(|e| format!("failed to spawn cargo: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`cargo {}` exited with {status}", args.join(" ")))
    }
}

fn run_fmt(root: &Path) -> Result<(), String> {
    cargo(root, &["fmt", "--all", "--check"], &[])
}

fn run_clippy(root: &Path) -> Result<(), String> {
    // The workspace lint tables already deny warnings; `-D warnings` is
    // kept as a belt-and-braces guard for lints raised by rustc itself.
    cargo(root, &["clippy", "--workspace", "--all-targets", "--quiet", "--", "-D", "warnings"], &[])
}

fn run_doc(root: &Path) -> Result<(), String> {
    cargo(root, &["doc", "--workspace", "--no-deps", "--quiet"], &[("RUSTDOCFLAGS", "-D warnings")])
}

fn run_test(root: &Path) -> Result<(), String> {
    cargo(root, &["test", "--workspace", "--quiet"], &[])
}

fn run_bench_build(root: &Path) -> Result<(), String> {
    cargo(root, &["bench", "--workspace", "--no-run", "--quiet"], &[])
}

/// Runs a tiny traced clustering through the real CLI and validates the
/// Chrome trace artifact with the harness's own JSON reader (see
/// [`tracecheck`]). The artifact is left at
/// `target/trace-smoke/trace.json` so CI can upload it.
fn run_trace_smoke(root: &Path) -> Result<(), String> {
    let dir = root.join("target").join("trace-smoke");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let edges = dir.join("edges.txt");
    let trace = dir.join("trace.json");

    // `linkclust generate` writes the edge list to stdout.
    let graph = cargo_capture(
        root,
        &[
            "run",
            "--release",
            "--quiet",
            "-p",
            "linkclust",
            "--bin",
            "linkclust",
            "--",
            "generate",
            "gnm",
            "400",
            "1600",
        ],
    )?;
    std::fs::write(&edges, graph).map_err(|e| format!("cannot write {}: {e}", edges.display()))?;

    let edges_arg = edges.to_string_lossy().into_owned();
    let trace_arg = trace.to_string_lossy().into_owned();
    cargo_capture(
        root,
        &[
            "run",
            "--release",
            "--quiet",
            "-p",
            "linkclust",
            "--bin",
            "linkclust",
            "--",
            &edges_arg,
            "--coarse",
            "--threads",
            "4",
            "--trace",
            &trace_arg,
        ],
    )?;

    let text = std::fs::read_to_string(&trace)
        .map_err(|e| format!("traced run left no artifact at {}: {e}", trace.display()))?;
    let summary = tracecheck::check_chrome_trace(&text)
        .map_err(|e| format!("{} is not a valid Chrome trace: {e}", trace.display()))?;
    eprintln!(
        "trace-smoke: {} complete events across {} threads ({} dropped) in {}",
        summary.complete_events,
        summary.threads,
        summary.dropped,
        trace.display()
    );
    Ok(())
}

/// Runs `cargo <args>` at the workspace root, capturing stdout; stderr
/// passes through. Non-zero exits map to an error message.
fn cargo_capture(root: &Path, args: &[&str]) -> Result<Vec<u8>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .current_dir(root)
        .args(args)
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| format!("failed to spawn cargo: {e}"))?;
    if output.status.success() {
        Ok(output.stdout)
    } else {
        Err(format!("`cargo {}` exited with {}", args.join(" "), output.status))
    }
}

/// Builds and runs the `bench_smoke` binary in release mode, forwarding
/// any extra CLI flags (`--runs N`, `--out PATH`, `--init-out PATH`).
fn run_bench_smoke(root: &Path, extra: &[&str]) -> Result<(), String> {
    let mut args =
        vec!["run", "--release", "--quiet", "-p", "linkclust-bench", "--bin", "bench_smoke"];
    if !extra.is_empty() {
        args.push("--");
        args.extend_from_slice(extra);
    }
    cargo(root, &args, &[])
}

/// Builds and runs the `bench_ladder` binary in release mode, forwarding
/// any extra CLI flags (`--smoke`, `--runs N`, `--out PATH`), then
/// validates the artifact it wrote with the harness's own JSON reader
/// (see [`benchcheck`]). A full (non-smoke) document must reach the
/// million-edge tier. With `--check-only` the (expensive) ladder run is
/// skipped and an existing artifact is validated in place.
fn run_bench_ladder(root: &Path, extra: &[&str]) -> Result<(), String> {
    let check_only = extra.contains(&"--check-only");
    let extra: Vec<&str> = extra.iter().copied().filter(|a| *a != "--check-only").collect();
    let extra = extra.as_slice();
    if !check_only {
        let mut args =
            vec!["run", "--release", "--quiet", "-p", "linkclust-bench", "--bin", "bench_ladder"];
        if !extra.is_empty() {
            args.push("--");
            args.extend_from_slice(extra);
        }
        cargo(root, &args, &[])?;
    }

    let out = extra
        .iter()
        .position(|a| *a == "--out")
        .and_then(|i| extra.get(i + 1))
        .map_or_else(|| root.join("BENCH_scale.json"), PathBuf::from);
    let text = std::fs::read_to_string(&out)
        .map_err(|e| format!("ladder run left no artifact at {}: {e}", out.display()))?;
    let summary = benchcheck::check_scale_document(&text)
        .map_err(|e| format!("{} fails schema validation: {e}", out.display()))?;
    if !summary.smoke && summary.max_edges < 1_000_000 {
        return Err(format!(
            "full ladder document tops out at {} edges (expected at least 1000000)",
            summary.max_edges
        ));
    }
    eprintln!(
        "bench-ladder: {} rungs, largest rung {} edges, in {}",
        summary.rungs,
        summary.max_edges,
        out.display()
    );
    Ok(())
}

/// Builds `linkclustd`, then drives a short mixed query load through a
/// real socket with `bench_serve --smoke` and schema-validates the
/// artifact it writes. The artifact is left at
/// `target/serve-smoke/BENCH_serve_smoke.json` so CI can upload it.
fn run_serve_smoke(root: &Path) -> Result<(), String> {
    let dir = root.join("target").join("serve-smoke");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let out = dir.join("BENCH_serve_smoke.json");
    let out_arg = out.to_string_lossy().into_owned();
    let stats = dir.join("daemon_stats.json");
    let stats_arg = stats.to_string_lossy().into_owned();
    // bench_serve finds the daemon next to its own executable, so the
    // daemon must be built into the same profile directory first.
    cargo(root, &["build", "--release", "--quiet", "-p", "linkclust", "--bin", "linkclustd"], &[])?;
    cargo(
        root,
        &[
            "run",
            "--release",
            "--quiet",
            "-p",
            "linkclust-bench",
            "--bin",
            "bench_serve",
            "--",
            "--smoke",
            "--queries",
            "400",
            "--out",
            &out_arg,
            "--daemon-stats",
            &stats_arg,
        ],
        &[],
    )?;
    let text = std::fs::read_to_string(&out)
        .map_err(|e| format!("serve smoke left no artifact at {}: {e}", out.display()))?;
    let summary = benchcheck::check_serve_document(&text)
        .map_err(|e| format!("{} fails schema validation: {e}", out.display()))?;
    // The daemon writes its own stats document at shutdown; validate
    // the v2 schema end to end (uptime, admit failures, runtime rings).
    let stats_text = std::fs::read_to_string(&stats)
        .map_err(|e| format!("daemon left no stats document at {}: {e}", stats.display()))?;
    let stats_summary = benchcheck::check_serve_stats_document(&stats_text)
        .map_err(|e| format!("{} fails stats-schema validation: {e}", stats.display()))?;
    eprintln!(
        "serve-smoke: {} queries, cache hit rate {:.1}%, {} served during admission, in {}; \
         daemon stats v2 ok (generation {}, {} ticks, up {:.1}s)",
        summary.queries,
        100.0 * summary.hit_rate,
        summary.queries_during_admission,
        out.display(),
        stats_summary.generation,
        stats_summary.ticks,
        stats_summary.uptime_seconds,
    );
    Ok(())
}

/// Spawns a real `linkclustd --metrics-port 0` on a tiny generated
/// graph, scrapes `GET /metrics` over plain HTTP, and validates the
/// exposition with the harness's own reader (see [`metricscheck`]):
/// format 0.0.4 structure, histogram coherence, and coverage of every
/// serve counter, the per-kind latency histogram, and the runtime
/// gauges. The scraped body is left at `target/metrics-smoke/metrics.txt`
/// so CI can upload it.
fn run_metrics_smoke(root: &Path) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = root.join("target").join("metrics-smoke");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let edges = dir.join("edges.txt");
    let graph = cargo_capture(
        root,
        &[
            "run",
            "--release",
            "--quiet",
            "-p",
            "linkclust",
            "--bin",
            "linkclust",
            "--",
            "generate",
            "gnm",
            "400",
            "1600",
        ],
    )?;
    std::fs::write(&edges, graph).map_err(|e| format!("cannot write {}: {e}", edges.display()))?;
    cargo(root, &["build", "--release", "--quiet", "-p", "linkclust", "--bin", "linkclustd"], &[])?;

    let daemon = root.join("target").join("release").join("linkclustd");
    let mut child = Command::new(&daemon)
        .arg(&edges)
        .args(["--listen", "127.0.0.1:0", "--threads", "2", "--metrics-port", "0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", daemon.display()))?;

    // Everything after the spawn must reach the kill below on failure.
    let result = (|| -> Result<(), String> {
        let stdout = child.stdout.take().ok_or("daemon stdout was not captured")?;
        let mut lines = BufReader::new(stdout).lines();
        let mut serve_addr = None;
        let mut metrics_addr = None;
        while serve_addr.is_none() || metrics_addr.is_none() {
            let line = lines
                .next()
                .ok_or("daemon exited before announcing its listeners")?
                .map_err(|e| format!("cannot read daemon stdout: {e}"))?;
            if let Some(addr) = line.strip_prefix("LISTENING ") {
                serve_addr = Some(addr.trim().to_owned());
            } else if let Some(addr) = line.strip_prefix("METRICS ") {
                metrics_addr = Some(addr.trim().to_owned());
            }
        }
        let (serve_addr, metrics_addr) =
            (serve_addr.ok_or("no LISTENING line")?, metrics_addr.ok_or("no METRICS line")?);

        // Scrape with a raw HTTP/1.1 request — the same thing a
        // Prometheus scraper sends.
        let mut conn = std::net::TcpStream::connect(&metrics_addr)
            .map_err(|e| format!("cannot connect to metrics listener {metrics_addr}: {e}"))?;
        conn.write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {metrics_addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("cannot send scrape request: {e}"))?;
        let mut response = String::new();
        conn.read_to_string(&mut response)
            .map_err(|e| format!("cannot read scrape response: {e}"))?;
        let (head, body) = response
            .split_once("\r\n\r\n")
            .ok_or("metrics response has no header/body separator")?;
        let status = head.lines().next().unwrap_or("");
        if !status.starts_with("HTTP/1.1 200") {
            return Err(format!("metrics scrape returned {status:?}"));
        }
        let content_type_ok = head
            .lines()
            .any(|l| l.to_ascii_lowercase().starts_with("content-type:") && l.contains("0.0.4"));
        if !content_type_ok {
            return Err(
                "metrics response lacks the text/plain; version=0.0.4 content type".to_owned()
            );
        }
        let artifact = dir.join("metrics.txt");
        std::fs::write(&artifact, body)
            .map_err(|e| format!("cannot write {}: {e}", artifact.display()))?;

        let required = [
            "linkclustd_serve_queries_total",
            "linkclustd_serve_cache_hits_total",
            "linkclustd_serve_cache_misses_total",
            "linkclustd_serve_admissions_total",
            "linkclustd_serve_swaps_total",
            "linkclustd_phase_seconds_total",
            "linkclustd_phase_calls_total",
            "linkclustd_query_latency_seconds",
            "linkclustd_uptime_seconds",
            "linkclustd_rss_bytes",
            "linkclustd_cache_entries",
            "linkclustd_cache_hit_ratio",
            "linkclustd_pool_queue_depth",
            "linkclustd_index_generation",
            "linkclustd_runtime_ticks_total",
        ];
        let summary = metricscheck::check_exposition(body, &required)
            .map_err(|e| format!("{} is not valid exposition: {e}", artifact.display()))?;
        for kind in ["cut", "edge", "vertex", "topk", "profile", "best"] {
            if !summary.has_labeled_sample("linkclustd_query_latency_seconds_bucket", "kind", kind)
            {
                return Err(format!("latency histogram has no series for kind {kind:?}"));
            }
        }

        // Clean shutdown through the line protocol.
        let mut conn = std::net::TcpStream::connect(&serve_addr)
            .map_err(|e| format!("cannot connect to serve listener {serve_addr}: {e}"))?;
        conn.write_all(b"{\"op\":\"shutdown\"}\n")
            .map_err(|e| format!("cannot send shutdown: {e}"))?;
        let mut ack = String::new();
        let _ = conn.read_to_string(&mut ack);
        eprintln!(
            "metrics-smoke: {} families, {} samples scraped from {metrics_addr}, in {}",
            summary.families,
            summary.samples,
            artifact.display()
        );
        Ok(())
    })();
    if result.is_err() {
        let _ = child.kill();
    }
    let _ = child.wait();
    result
}

/// Builds the daemon and the `bench_serve` load generator in release
/// mode, runs the load (forwarding `--smoke`, `--queries N`,
/// `--out PATH`, ...), then validates the artifact it wrote. With
/// `--check-only` the run is skipped and an existing artifact is
/// validated in place.
fn run_bench_serve(root: &Path, extra: &[&str]) -> Result<(), String> {
    let check_only = extra.contains(&"--check-only");
    let extra: Vec<&str> = extra.iter().copied().filter(|a| *a != "--check-only").collect();
    let extra = extra.as_slice();
    if !check_only {
        cargo(
            root,
            &["build", "--release", "--quiet", "-p", "linkclust", "--bin", "linkclustd"],
            &[],
        )?;
        let mut args =
            vec!["run", "--release", "--quiet", "-p", "linkclust-bench", "--bin", "bench_serve"];
        if !extra.is_empty() {
            args.push("--");
            args.extend_from_slice(extra);
        }
        cargo(root, &args, &[])?;
    }

    let out = extra
        .iter()
        .position(|a| *a == "--out")
        .and_then(|i| extra.get(i + 1))
        .map_or_else(|| root.join("BENCH_serve.json"), PathBuf::from);
    let text = std::fs::read_to_string(&out)
        .map_err(|e| format!("serve run left no artifact at {}: {e}", out.display()))?;
    let summary = benchcheck::check_serve_document(&text)
        .map_err(|e| format!("{} fails schema validation: {e}", out.display()))?;
    eprintln!(
        "bench-serve: {} queries ({}), cache hit rate {:.1}%, {} served during admission, in {}",
        summary.queries,
        if summary.smoke { "smoke" } else { "full" },
        100.0 * summary.hit_rate,
        summary.queries_during_admission,
        out.display()
    );
    Ok(())
}

fn run_scan(root: &Path) -> Result<(), String> {
    let report = scan::scan_workspace(root).map_err(|e| format!("scanner I/O error: {e}"))?;
    for v in &report.violations {
        eprintln!("{}", v.display(root));
    }
    eprintln!(
        "scan: {} files, {} violations, {} waivers",
        report.files_scanned,
        report.violations.len(),
        report.waivers
    );
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} forbidden-pattern violations", report.violations.len()))
    }
}
