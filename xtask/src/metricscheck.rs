//! Structural validation of Prometheus text exposition (format 0.0.4),
//! for the `metrics-smoke` gate.
//!
//! Re-parses the body a live `linkclustd --metrics-port` daemon served
//! over HTTP with the harness's own reader, so a bug in the serve
//! crate's hand-rolled renderer cannot hide behind the renderer itself.
//! Checks the format rules a scraper depends on:
//!
//! * every sample belongs to a family with a `# TYPE` line that
//!   *precedes* its samples, and the type is `counter`, `gauge`, or
//!   `histogram`;
//! * every family also carries a `# HELP` line;
//! * counter samples are finite and non-negative (gauges may be `NaN`
//!   — e.g. RSS on hosts without `/proc`);
//! * no (name, label-set) pair is exported twice;
//! * histogram series are complete and coherent per label set: bucket
//!   `le` bounds strictly increasing and ending in `+Inf`, cumulative
//!   counts non-decreasing, the `+Inf` bucket equal to `_count`, and a
//!   finite `_sum` present.
//!
//! The gate additionally requires a caller-supplied coverage list so
//! the daemon cannot silently stop exporting a family.

use std::collections::{BTreeMap, BTreeSet};

/// The metric type a `# TYPE` line declared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// One parsed sample line.
struct Sample {
    /// Full sample name as written (histograms keep `_bucket` etc.).
    name: String,
    /// Label pairs in written order.
    labels: Vec<(String, String)>,
    value: f64,
}

/// What a validated exposition contained.
#[derive(Debug)]
pub(crate) struct ExpositionSummary {
    /// Declared metric families.
    pub(crate) families: usize,
    /// Sample lines.
    pub(crate) samples: usize,
    /// Every sample's (name, labels), for coverage checks beyond
    /// family names.
    sampled_series: Vec<(String, Vec<(String, String)>)>,
}

impl ExpositionSummary {
    /// Whether a sample for `name` was exported carrying the given
    /// label pair (other labels may be present too).
    pub(crate) fn has_labeled_sample(&self, name: &str, label: &str, value: &str) -> bool {
        self.sampled_series
            .iter()
            .any(|(n, labels)| n == name && labels.iter().any(|(k, v)| k == label && v == value))
    }
}

/// Splits `name{labels} value` into its three parts, validating the
/// metric-name charset.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
        return Err(format!("invalid metric name in {line:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(after_brace) = rest.strip_prefix('{') {
        let close = after_brace.find('}').ok_or_else(|| format!("unclosed labels in {line:?}"))?;
        (parse_labels(&after_brace[..close])?, &after_brace[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let value_text = rest.trim();
    if value_text.is_empty() {
        return Err(format!("sample {line:?} has no value"));
    }
    let value = match value_text {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|_| format!("unparseable value {v:?} in {line:?}"))?,
    };
    Ok(Sample { name: name.to_owned(), labels, value })
}

/// Parses `k1="v1",k2="v2"`; values may contain `\\`, `\"`, `\n`.
fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("malformed label pair in {text:?}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(format!("bad escape in label value in {text:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {text:?}")),
            }
        }
        labels.push((key.trim().to_owned(), value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => {}
            Some(c) => return Err(format!("unexpected {c:?} after label value in {text:?}")),
        }
    }
}

/// The family a sample belongs to under `kind`: histograms attribute
/// their `_bucket`/`_sum`/`_count` series to the base name.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, MetricKind>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base) == Some(&MetricKind::Histogram) {
                return Some(base);
            }
        }
    }
    None
}

/// Renders a stable series key (`name{k="v",...}`, labels sorted).
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = labels.iter().collect();
    sorted.sort();
    let rendered: Vec<String> =
        sorted.iter().map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "\\\""))).collect();
    if rendered.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{}}}", rendered.join(","))
    }
}

/// Validates `text` as Prometheus exposition and checks that every
/// family in `required` was declared and sampled.
pub(crate) fn check_exposition(text: &str, required: &[&str]) -> Result<ExpositionSummary, String> {
    let mut types: BTreeMap<String, MetricKind> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut series: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<Sample> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return Err(at(format!("malformed TYPE line {line:?}")));
            };
            let kind = match kind {
                "counter" => MetricKind::Counter,
                "gauge" => MetricKind::Gauge,
                "histogram" => MetricKind::Histogram,
                other => return Err(at(format!("unsupported metric type {other:?}"))),
            };
            if types.insert(name.to_owned(), kind).is_some() {
                return Err(at(format!("family {name:?} declared twice")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if name.is_empty() {
                return Err(at(format!("malformed HELP line {line:?}")));
            }
            helps.insert(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let sample = parse_sample(line).map_err(at)?;
        let Some(family) = family_of(&sample.name, &types) else {
            return Err(format!(
                "line {}: sample {:?} precedes (or lacks) its # TYPE declaration",
                lineno + 1,
                sample.name
            ));
        };
        let family = family.to_owned();
        if types.get(&family) == Some(&MetricKind::Counter)
            && !(sample.value.is_finite() && sample.value >= 0.0)
        {
            return Err(format!(
                "line {}: counter {:?} has non-finite or negative value {}",
                lineno + 1,
                sample.name,
                sample.value
            ));
        }
        let key = series_key(&sample.name, &sample.labels);
        if !series.insert(key.clone()) {
            return Err(format!("line {}: series {key} exported twice", lineno + 1));
        }
        sampled.insert(family);
        samples.push(sample);
    }

    for name in types.keys() {
        if !helps.contains(name) {
            return Err(format!("family {name:?} has no # HELP line"));
        }
        if !sampled.contains(name) {
            return Err(format!("family {name:?} declared but never sampled"));
        }
    }
    for (name, kind) in &types {
        if *kind == MetricKind::Histogram {
            check_histogram(name, &samples)?;
        }
    }
    for name in required {
        if !types.contains_key(*name) {
            return Err(format!("required family {name:?} is missing from the exposition"));
        }
    }
    let sampled_series = samples.iter().map(|s| (s.name.clone(), s.labels.clone())).collect();
    Ok(ExpositionSummary { families: types.len(), samples: samples.len(), sampled_series })
}

/// Checks every label-set series of one histogram family for bucket
/// coherence.
fn check_histogram(name: &str, samples: &[Sample]) -> Result<(), String> {
    // Group buckets by their labels minus `le`.
    let mut by_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    for s in samples {
        if let Some(suffix) = s.name.strip_prefix(name) {
            let bare: Vec<(String, String)> =
                s.labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            let key = series_key("", &bare);
            match suffix {
                "_bucket" => {
                    let le = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| format!("{name}: bucket without an `le` label"))?;
                    let bound = match le.1.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => {
                            v.parse().map_err(|_| format!("{name}: unparseable le bound {v:?}"))?
                        }
                    };
                    by_series.entry(key).or_default().push((bound, s.value));
                }
                "_count" => {
                    counts.insert(key, s.value);
                }
                "_sum" => {
                    sums.insert(key, s.value);
                }
                _ => {}
            }
        }
    }
    if by_series.is_empty() {
        return Err(format!("histogram {name:?} has no bucket series"));
    }
    for (key, buckets) in &by_series {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_count = -1.0;
        for (bound, count) in buckets {
            if *bound <= prev_bound {
                return Err(format!("histogram {name}{key}: le bounds not strictly increasing"));
            }
            if *count < prev_count {
                return Err(format!("histogram {name}{key}: cumulative counts decrease"));
            }
            prev_bound = *bound;
            prev_count = *count;
        }
        let (last_bound, last_count) =
            buckets.last().unwrap_or(&(f64::NEG_INFINITY, -1.0)).to_owned();
        if last_bound != f64::INFINITY {
            return Err(format!("histogram {name}{key}: no +Inf bucket"));
        }
        let Some(count) = counts.get(key) else {
            return Err(format!("histogram {name}{key}: no _count sample"));
        };
        #[allow(clippy::float_cmp)] // cumulative counts are exact integers
        if *count != last_count {
            return Err(format!(
                "histogram {name}{key}: +Inf bucket {last_count} != _count {count}"
            ));
        }
        match sums.get(key) {
            Some(s) if s.is_finite() => {}
            _ => return Err(format!("histogram {name}{key}: no finite _sum sample")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid exposition with one of each family type.
    fn exposition() -> String {
        "# HELP d_requests_total Requests served.\n\
         # TYPE d_requests_total counter\n\
         d_requests_total 7\n\
         # HELP d_rss_bytes Resident set size.\n\
         # TYPE d_rss_bytes gauge\n\
         d_rss_bytes{which=\"current\"} 1048576\n\
         d_rss_bytes{which=\"peak\"} NaN\n\
         # HELP d_latency_seconds Query latency.\n\
         # TYPE d_latency_seconds histogram\n\
         d_latency_seconds_bucket{kind=\"cut\",le=\"0.001\"} 2\n\
         d_latency_seconds_bucket{kind=\"cut\",le=\"0.1\"} 5\n\
         d_latency_seconds_bucket{kind=\"cut\",le=\"+Inf\"} 7\n\
         d_latency_seconds_sum{kind=\"cut\"} 0.42\n\
         d_latency_seconds_count{kind=\"cut\"} 7\n"
            .to_owned()
    }

    #[test]
    fn accepts_a_well_formed_exposition() {
        let summary = check_exposition(&exposition(), &["d_requests_total", "d_latency_seconds"])
            .expect("valid exposition");
        assert_eq!(summary.families, 3);
        assert_eq!(summary.samples, 8);
        assert!(summary.has_labeled_sample("d_latency_seconds_count", "kind", "cut"));
        assert!(!summary.has_labeled_sample("d_latency_seconds_count", "kind", "edge"));
    }

    #[test]
    fn rejects_format_violations() {
        let base = exposition();
        let cases: &[(&str, &str, &str)] = &[
            ("# TYPE d_requests_total counter\n", "", "TYPE"),
            ("# HELP d_requests_total Requests served.\n", "", "HELP"),
            ("d_requests_total 7", "d_requests_total -1", "negative"),
            ("d_requests_total 7", "d_requests_total NaN", "non-finite"),
            ("le=\"0.1\"} 5", "le=\"0.1\"} 1", "decrease"),
            ("le=\"0.001\"} 2", "le=\"0.2\"} 2", "increasing"),
            ("d_latency_seconds_count{kind=\"cut\"} 7", "", "_count"),
            ("d_latency_seconds_sum{kind=\"cut\"} 0.42\n", "", "_sum"),
            ("le=\"+Inf\"} 7", "le=\"+Inf\"} 6", "+Inf bucket"),
            ("d_rss_bytes{which=\"peak\"} NaN", "d_rss_bytes{which=\"current\"} 9", "twice"),
        ];
        for (from, to, expect) in cases {
            let mutated = base.replace(from, to);
            assert_ne!(&mutated, &base, "mutation {from:?} did not apply");
            let err = check_exposition(&mutated, &[])
                .expect_err(&format!("mutation {from:?} should invalidate the exposition"));
            assert!(err.contains(expect), "mutation {from:?}: error {err:?} lacks {expect:?}");
        }
        // Dropping the +Inf bucket entirely.
        let no_inf = base.replace("d_latency_seconds_bucket{kind=\"cut\",le=\"+Inf\"} 7\n", "");
        assert!(check_exposition(&no_inf, &[]).unwrap_err().contains("+Inf"));
        // A sample before its TYPE declaration.
        let early = format!("early_total 1\n{base}# TYPE early_total counter\n");
        assert!(check_exposition(&early, &[]).unwrap_err().contains("precedes"));
    }

    #[test]
    fn enforces_required_coverage() {
        let err = check_exposition(&exposition(), &["d_missing_total"]).unwrap_err();
        assert!(err.contains("d_missing_total"));
    }

    #[test]
    fn label_values_may_contain_escapes() {
        let text = "# HELP e_total E.\n# TYPE e_total counter\n\
                    e_total{path=\"a\\\\b\\\"c\\nd\"} 1\n";
        let summary = check_exposition(text, &["e_total"]).expect("escapes parse");
        assert_eq!(summary.samples, 1);
        assert!(summary.has_labeled_sample("e_total", "path", "a\\b\"c\nd"));
    }
}
