//! The forbidden-pattern scanner.
//!
//! Scans the non-test source of every first-party crate (`crates/*/src`
//! and the root `src/`) and reports:
//!
//! * **stray panics** — `.unwrap()` anywhere outside test code, and
//!   `.expect(` / `panic!(` / `todo!(` / `unimplemented!(` / `dbg!(`
//!   outside test code *and* outside a function whose doc comment carries
//!   a `# Panics` section (a documented-panic API);
//! * **undocumented assertions** — `assert!` / `assert_eq!` /
//!   `assert_ne!` in a `pub fn` without a `# Panics` section
//!   (`debug_assert*` is exempt: it vanishes in release builds);
//! * **non-determinism in bench figures** — wall-clock *dates*
//!   (`SystemTime`, `chrono`) inside `crates/bench/src`, so repeated
//!   figure runs emit byte-identical artifacts (`Instant` is fine: it is
//!   the timing primitive, not a date).
//!
//! Test code is exempt: `#[cfg(test)]` regions, doc comments (and the
//! doctests inside them), and everything outside the scanned roots
//! (`tests/`, `benches/`, `examples/`, `vendor/`, `xtask/`). A line can
//! carry an explicit waiver comment `xtask-allow: <reason>`; waivers are
//! counted and printed so they stay visible.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
pub(crate) struct Violation {
    /// Absolute path of the offending file.
    pub(crate) file: PathBuf,
    /// 1-based line number.
    pub(crate) line: usize,
    /// Short rule identifier (e.g. `stray-unwrap`).
    pub(crate) rule: &'static str,
    /// Human-readable explanation.
    pub(crate) message: String,
}

impl Violation {
    /// Formats the violation as `path:line: [rule] message`, with `path`
    /// relative to `root`.
    pub(crate) fn display(&self, root: &Path) -> String {
        let rel = self.file.strip_prefix(root).unwrap_or(&self.file);
        let mut out = String::new();
        let _ = write!(out, "{}:{}: [{}] {}", rel.display(), self.line, self.rule, self.message);
        out
    }
}

/// The scanner's aggregate result.
pub(crate) struct ScanReport {
    /// Every violation found, in path order.
    pub(crate) violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub(crate) files_scanned: usize,
    /// Number of lines carrying an explicit `xtask-allow` waiver.
    pub(crate) waivers: usize,
}

/// Scans the workspace rooted at `root`.
pub(crate) fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rust_files(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rust_files(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = ScanReport { violations: Vec::new(), files_scanned: 0, waivers: 0 };
    for file in files {
        let text = fs::read_to_string(&file)?;
        report.files_scanned += 1;
        scan_file(&file, &text, &mut report);
    }
    Ok(report)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Per-file scanning state: a line-oriented approximation of the Rust
/// grammar that tracks brace depth, `#[cfg(test)]` regions, and which
/// function (documented-panic or not, `pub` or not) each line belongs to.
struct FileState {
    /// Current brace depth.
    depth: usize,
    /// Depths at which `#[cfg(test)]` regions were entered.
    test_regions: Vec<usize>,
    /// Open function scopes: (entry depth, has `# Panics` doc, is pub).
    fn_scopes: Vec<(usize, bool, bool)>,
    /// A `#[cfg(test)]` attribute was seen; the next `{` opens its region.
    pending_test: bool,
    /// A `fn` signature was seen; the next `{` opens its body.
    pending_fn: Option<(bool, bool)>,
    /// The doc block accumulated above the next item mentions `# Panics`.
    doc_has_panics: bool,
    /// Inside a `/* ... */` block comment.
    in_block_comment: bool,
}

fn scan_file(file: &Path, text: &str, report: &mut ScanReport) {
    let in_bench = file.components().any(|c| c.as_os_str() == "bench");
    let mut st = FileState {
        depth: 0,
        test_regions: Vec::new(),
        fn_scopes: Vec::new(),
        pending_test: false,
        pending_fn: None,
        doc_has_panics: false,
        in_block_comment: false,
    };

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let (code, comment) = split_code_and_comment(raw_line, &mut st.in_block_comment);
        let trimmed = code.trim();

        // Doc comments: track `# Panics`, never scan their contents
        // (doctests legitimately use unwrap/expect/panic).
        let raw_trimmed = raw_line.trim_start();
        if raw_trimmed.starts_with("///") || raw_trimmed.starts_with("//!") {
            if raw_trimmed.contains("# Panics") {
                st.doc_has_panics = true;
            }
            continue;
        }

        let waived = comment.contains("xtask-allow:") || code.contains("xtask-allow:");
        if waived {
            report.waivers += 1;
        }

        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[cfg(all(test") {
            st.pending_test = true;
        }

        // Attribute or blank lines keep the pending doc block alive;
        // anything else consumes it below.
        let is_attr_or_blank = trimmed.is_empty() || trimmed.starts_with("#[");

        // A `fn` signature (free fn, method, or trait default) binds the
        // accumulated doc block.
        if !st.in_test(st.depth) && st.pending_fn.is_none() && has_fn_keyword(trimmed) {
            let is_pub = trimmed.starts_with("pub ");
            st.pending_fn = Some((st.doc_has_panics, is_pub));
        }

        let in_test = st.in_test(st.depth);
        if !in_test && !waived {
            check_patterns(file, line_no, trimmed, in_bench, &st, report);
        }

        // Brace accounting (on the comment/string-stripped code).
        for ch in code.chars() {
            match ch {
                '{' => {
                    if st.pending_test {
                        st.test_regions.push(st.depth);
                        st.pending_test = false;
                        st.pending_fn = None;
                    } else if let Some((documented, is_pub)) = st.pending_fn.take() {
                        st.fn_scopes.push((st.depth, documented, is_pub));
                    }
                    st.depth += 1;
                }
                '}' => {
                    st.depth = st.depth.saturating_sub(1);
                    while st.test_regions.last() == Some(&st.depth) {
                        st.test_regions.pop();
                    }
                    while st.fn_scopes.last().is_some_and(|&(d, _, _)| d == st.depth) {
                        st.fn_scopes.pop();
                    }
                }
                _ => {}
            }
        }

        // A signature ending in `;` (trait method declaration) never gets
        // a body; drop the pending fn so it cannot leak onto a later `{`.
        if st.pending_fn.is_some() && trimmed.ends_with(';') {
            st.pending_fn = None;
        }

        if !is_attr_or_blank {
            st.doc_has_panics = false;
        }
    }
}

impl FileState {
    fn in_test(&self, _depth: usize) -> bool {
        !self.test_regions.is_empty()
    }

    /// `true` if any enclosing function documents its panics.
    fn panics_documented(&self) -> bool {
        self.pending_fn.is_some_and(|(d, _)| d)
            || self.fn_scopes.iter().any(|&(_, documented, _)| documented)
    }

    /// `true` if the innermost function scope is `pub`.
    fn innermost_is_pub(&self) -> bool {
        self.fn_scopes.last().is_some_and(|&(_, _, is_pub)| is_pub)
    }
}

fn check_patterns(
    file: &Path,
    line: usize,
    code: &str,
    in_bench: bool,
    st: &FileState,
    report: &mut ScanReport,
) {
    let mut push = |rule: &'static str, message: String| {
        report.violations.push(Violation { file: file.to_path_buf(), line, rule, message });
    };

    if code.contains(".unwrap()") {
        push(
            "stray-unwrap",
            "`.unwrap()` outside test code: use `.expect(\"<invariant>\")` inside a \
             `# Panics`-documented fn, a typed error, or an infallible rewrite"
                .to_string(),
        );
    }
    for (pat, rule) in
        [(".expect(", "undocumented-expect"), (".expect_err(", "undocumented-expect")]
    {
        if code.contains(pat) && !st.panics_documented() {
            push(rule, format!("`{pat}...)` in a fn without a `# Panics` doc section"));
        }
    }
    for pat in ["panic!(", "unimplemented!(", "todo!(", "dbg!("] {
        if contains_macro(code, pat) {
            let hard_forbidden = matches!(pat, "todo!(" | "unimplemented!(" | "dbg!(");
            if hard_forbidden {
                push("forbidden-macro", format!("`{pat}...)` must not appear in shipped code"));
            } else if !st.panics_documented() {
                push(
                    "undocumented-panic",
                    format!("`{pat}...)` in a fn without a `# Panics` doc section"),
                );
            }
        }
    }
    for pat in ["assert!(", "assert_eq!(", "assert_ne!("] {
        if contains_macro(code, pat) && st.innermost_is_pub() && !st.panics_documented() {
            push(
                "undocumented-assert",
                format!("`{pat}...)` in a pub fn without a `# Panics` doc section"),
            );
        }
    }
    if in_bench {
        for pat in ["SystemTime", "chrono::", "Utc::now", "Local::now"] {
            if code.contains(pat) {
                push(
                    "bench-date",
                    format!(
                        "`{pat}` in bench code: figure artifacts must be date-free \
                             so repeated runs are byte-identical"
                    ),
                );
            }
        }
    }
}

/// `true` if `code` invokes the macro `pat` (which ends in `!(`), with a
/// non-identifier character before it — so `assert!(` does not match
/// `debug_assert!(`.
fn contains_macro(code: &str, pat: &str) -> bool {
    let mut search = code;
    let mut offset = 0;
    while let Some(pos) = search.find(pat) {
        let abs = offset + pos;
        let boundary = abs == 0
            || !code.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && code.as_bytes()[abs - 1] != b'_';
        if boundary {
            return true;
        }
        offset = abs + pat.len();
        search = &code[offset..];
    }
    false
}

/// `true` if the line starts a `fn` item (not `fn` inside a word, and not
/// a fn-pointer type, approximated by requiring the keyword at a token
/// boundary followed by an identifier).
fn has_fn_keyword(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find("fn ") {
        let abs = search + pos;
        let before_ok = abs == 0 || bytes[abs - 1] == b' ' || bytes[abs - 1] == b'(';
        let after = code[abs + 3..].trim_start();
        let after_ok = after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        // `Fn(`/`fn(` pointer types have `(` immediately after the keyword.
        if before_ok && after_ok {
            return true;
        }
        search = abs + 3;
    }
    false
}

/// Splits a raw source line into its code part (string literals replaced
/// by spaces, comments removed) and the trailing `//` comment, tracking
/// multi-line `/* */` comments through `in_block_comment`.
fn split_code_and_comment(raw: &str, in_block_comment: &mut bool) -> (String, String) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let chars: Vec<(usize, char)> = raw.char_indices().collect();
    let mut i = 0;
    let mut in_string = false;
    let mut in_char = false;
    let at = |j: usize| chars.get(j).map(|&(_, c)| c);
    while i < chars.len() {
        let c = chars[i].1;
        if *in_block_comment {
            if c == '*' && at(i + 1) == Some('/') {
                *in_block_comment = false;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if in_string || in_char {
            let close = if in_string { '"' } else { '\'' };
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == close {
                in_string = false;
                in_char = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                code.push(' ');
                i += 1;
            }
            '\'' => {
                // Distinguish char literals from lifetimes: a literal is
                // `'\...'` or `'<one char>'`; a lifetime has no closing
                // quote right after its first character.
                let is_char_literal = at(i + 1) == Some('\\') || at(i + 2) == Some('\'');
                if is_char_literal {
                    in_char = true;
                }
                code.push(' ');
                i += 1;
            }
            '/' if at(i + 1) == Some('/') => {
                comment = raw[chars[i].0..].to_string();
                break;
            }
            '/' if at(i + 1) == Some('*') => {
                *in_block_comment = true;
                i += 2;
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comment)
}
