//! The forbidden-pattern scanner.
//!
//! Scans the non-test source of every first-party crate (`crates/*/src`
//! and the root `src/`) and reports:
//!
//! * **stray panics** — `.unwrap()` anywhere outside test code, and
//!   `.expect(` / `panic!(` / `todo!(` / `unimplemented!(` / `dbg!(`
//!   outside test code *and* outside a function whose doc comment carries
//!   a `# Panics` section (a documented-panic API);
//! * **undocumented assertions** — `assert!` / `assert_eq!` /
//!   `assert_ne!` in a `pub fn` without a `# Panics` section
//!   (`debug_assert*` is exempt: it vanishes in release builds);
//! * **non-determinism in bench figures** — wall-clock *dates*
//!   (`SystemTime`, `chrono`) inside `crates/bench/src`, so repeated
//!   figure runs emit byte-identical artifacts (`Instant` is fine: it is
//!   the timing primitive, not a date).
//!
//! The scanner runs on the shared token stream of [`crate::lexer`]:
//! string/char literals and comments are whole tokens, so a `.unwrap()`
//! inside a string literal or a comment can never fire, and every
//! violation carries an exact 1-based line *and byte column*. Each
//! source line is reconstructed from its non-literal code tokens (at
//! their original columns) before the line-oriented rules run.
//!
//! Test code is exempt: `#[cfg(test)]` regions, doc comments (and the
//! doctests inside them), and everything outside the scanned roots
//! (`tests/`, `benches/`, `examples/`, `vendor/`, `xtask/`). A line can
//! carry an explicit waiver comment `xtask-allow: <reason>`; waivers are
//! counted and printed so they stay visible.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokenKind};

/// One rule violation at a source location.
pub(crate) struct Violation {
    /// Absolute path of the offending file.
    pub(crate) file: PathBuf,
    /// 1-based line number.
    pub(crate) line: usize,
    /// 1-based byte column of the offending pattern.
    pub(crate) col: usize,
    /// Short rule identifier (e.g. `stray-unwrap`).
    pub(crate) rule: &'static str,
    /// Human-readable explanation.
    pub(crate) message: String,
}

impl Violation {
    /// Formats the violation as `path:line:col: [rule] message`, with
    /// `path` relative to `root`.
    pub(crate) fn display(&self, root: &Path) -> String {
        let rel = self.file.strip_prefix(root).unwrap_or(&self.file);
        let mut out = String::new();
        let _ = write!(
            out,
            "{}:{}:{}: [{}] {}",
            rel.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        );
        out
    }
}

/// The scanner's aggregate result.
pub(crate) struct ScanReport {
    /// Every violation found, in path order.
    pub(crate) violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub(crate) files_scanned: usize,
    /// Number of lines carrying an explicit `xtask-allow` waiver.
    pub(crate) waivers: usize,
}

/// Scans the workspace rooted at `root`.
pub(crate) fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rust_files(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rust_files(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = ScanReport { violations: Vec::new(), files_scanned: 0, waivers: 0 };
    for file in files {
        let text = fs::read_to_string(&file)?;
        report.files_scanned += 1;
        scan_file(&file, &text, &mut report);
    }
    Ok(report)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The token stream of one file, re-sliced per line: `code[i]` is line
/// `i + 1` reconstructed from its code tokens at their original byte
/// columns (string/char literals and comments blanked out), `comment[i]`
/// is the concatenated comment text starting on that line, and
/// `doc_panics[i]` marks a doc comment mentioning `# Panics`.
struct Lines {
    code: Vec<String>,
    comment: Vec<String>,
    doc_panics: Vec<bool>,
}

fn reslice(text: &str) -> Lines {
    let n_lines = text.lines().count().max(1);
    let mut lines = Lines {
        code: vec![String::new(); n_lines],
        comment: vec![String::new(); n_lines],
        doc_panics: vec![false; n_lines],
    };
    for t in lex(text) {
        let idx = t.line - 1;
        if t.is_comment() {
            if t.is_doc_comment() && t.text.contains("# Panics") {
                lines.doc_panics[idx] = true;
            }
            // Multi-line block comments attach to their starting line;
            // waivers and `# Panics` sections sit on the first line in
            // practice.
            let buf = &mut lines.comment[idx];
            if !buf.is_empty() {
                buf.push(' ');
            }
            buf.push_str(&t.text);
        } else if !matches!(t.kind, TokenKind::Str | TokenKind::Char) {
            // Code token: overlay at its original column so pattern
            // offsets in the reconstructed line are true byte columns.
            // (Only literals and comments can span lines, so the text
            // fits on one line.)
            let buf = &mut lines.code[idx];
            while buf.len() < t.col - 1 {
                buf.push(' ');
            }
            buf.push_str(&t.text);
        }
    }
    lines
}

/// Per-file scanning state: tracks brace depth, `#[cfg(test)]` regions,
/// and which function (documented-panic or not, `pub` or not) each line
/// belongs to.
struct FileState {
    /// Current brace depth.
    depth: usize,
    /// Depths at which `#[cfg(test)]` regions were entered.
    test_regions: Vec<usize>,
    /// Open function scopes: (entry depth, has `# Panics` doc, is pub).
    fn_scopes: Vec<(usize, bool, bool)>,
    /// A `#[cfg(test)]` attribute was seen; the next `{` opens its region.
    pending_test: bool,
    /// A `fn` signature was seen; the next `{` opens its body.
    pending_fn: Option<(bool, bool)>,
    /// The doc block accumulated above the next item mentions `# Panics`.
    doc_has_panics: bool,
}

fn scan_file(file: &Path, text: &str, report: &mut ScanReport) {
    let in_bench = file.components().any(|c| c.as_os_str() == "bench");
    let lines = reslice(text);
    let mut st = FileState {
        depth: 0,
        test_regions: Vec::new(),
        fn_scopes: Vec::new(),
        pending_test: false,
        pending_fn: None,
        doc_has_panics: false,
    };

    for idx in 0..lines.code.len() {
        let line_no = idx + 1;
        let code = lines.code[idx].as_str();
        let trimmed = code.trim();

        if lines.doc_panics[idx] {
            st.doc_has_panics = true;
        }
        let waived = lines.comment[idx].contains("xtask-allow:");
        if waived {
            report.waivers += 1;
        }

        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[cfg(all(test") {
            st.pending_test = true;
        }

        // Attribute, comment-only, or blank lines keep the pending doc
        // block alive; anything else consumes it below.
        let is_attr_or_blank = trimmed.is_empty() || trimmed.starts_with("#[");

        // A `fn` signature (free fn, method, or trait default) binds the
        // accumulated doc block.
        if !st.in_test() && st.pending_fn.is_none() && has_fn_keyword(trimmed) {
            let is_pub = trimmed.starts_with("pub ");
            st.pending_fn = Some((st.doc_has_panics, is_pub));
        }

        if !st.in_test() && !waived {
            check_patterns(file, line_no, code, in_bench, &st, report);
        }

        // Brace accounting (literals are already blanked out).
        for ch in code.chars() {
            match ch {
                '{' => {
                    if st.pending_test {
                        st.test_regions.push(st.depth);
                        st.pending_test = false;
                        st.pending_fn = None;
                    } else if let Some((documented, is_pub)) = st.pending_fn.take() {
                        st.fn_scopes.push((st.depth, documented, is_pub));
                    }
                    st.depth += 1;
                }
                '}' => {
                    st.depth = st.depth.saturating_sub(1);
                    while st.test_regions.last() == Some(&st.depth) {
                        st.test_regions.pop();
                    }
                    while st.fn_scopes.last().is_some_and(|&(d, _, _)| d == st.depth) {
                        st.fn_scopes.pop();
                    }
                }
                _ => {}
            }
        }

        // A signature ending in `;` (trait method declaration) never gets
        // a body; drop the pending fn so it cannot leak onto a later `{`.
        if st.pending_fn.is_some() && trimmed.ends_with(';') {
            st.pending_fn = None;
        }

        if !is_attr_or_blank {
            st.doc_has_panics = false;
        }
    }
}

impl FileState {
    fn in_test(&self) -> bool {
        !self.test_regions.is_empty()
    }

    /// `true` if any enclosing function documents its panics.
    fn panics_documented(&self) -> bool {
        self.pending_fn.is_some_and(|(d, _)| d)
            || self.fn_scopes.iter().any(|&(_, documented, _)| documented)
    }

    /// `true` if the innermost function scope is `pub`.
    fn innermost_is_pub(&self) -> bool {
        self.fn_scopes.last().is_some_and(|&(_, _, is_pub)| is_pub)
    }
}

fn check_patterns(
    file: &Path,
    line: usize,
    code: &str,
    in_bench: bool,
    st: &FileState,
    report: &mut ScanReport,
) {
    let mut push = |rule: &'static str, col: usize, message: String| {
        report.violations.push(Violation { file: file.to_path_buf(), line, col, rule, message });
    };

    if let Some(pos) = code.find(".unwrap()") {
        push(
            "stray-unwrap",
            pos + 1,
            "`.unwrap()` outside test code: use `.expect(\"<invariant>\")` inside a \
             `# Panics`-documented fn, a typed error, or an infallible rewrite"
                .to_string(),
        );
    }
    for (pat, rule) in
        [(".expect(", "undocumented-expect"), (".expect_err(", "undocumented-expect")]
    {
        if let Some(pos) = code.find(pat) {
            if !st.panics_documented() {
                push(
                    rule,
                    pos + 1,
                    format!("`{pat}...)` in a fn without a `# Panics` doc section"),
                );
            }
        }
    }
    for pat in ["panic!(", "unimplemented!(", "todo!(", "dbg!("] {
        if let Some(pos) = find_macro(code, pat) {
            let hard_forbidden = matches!(pat, "todo!(" | "unimplemented!(" | "dbg!(");
            if hard_forbidden {
                push(
                    "forbidden-macro",
                    pos + 1,
                    format!("`{pat}...)` must not appear in shipped code"),
                );
            } else if !st.panics_documented() {
                push(
                    "undocumented-panic",
                    pos + 1,
                    format!("`{pat}...)` in a fn without a `# Panics` doc section"),
                );
            }
        }
    }
    for pat in ["assert!(", "assert_eq!(", "assert_ne!("] {
        if let Some(pos) = find_macro(code, pat) {
            if st.innermost_is_pub() && !st.panics_documented() {
                push(
                    "undocumented-assert",
                    pos + 1,
                    format!("`{pat}...)` in a pub fn without a `# Panics` doc section"),
                );
            }
        }
    }
    if in_bench {
        for pat in ["SystemTime", "chrono::", "Utc::now", "Local::now"] {
            if let Some(pos) = code.find(pat) {
                push(
                    "bench-date",
                    pos + 1,
                    format!(
                        "`{pat}` in bench code: figure artifacts must be date-free \
                             so repeated runs are byte-identical"
                    ),
                );
            }
        }
    }
}

/// The 0-based byte offset where `code` invokes the macro `pat` (which
/// ends in `!(`), with a non-identifier character before it — so
/// `assert!(` does not match `debug_assert!(`.
fn find_macro(code: &str, pat: &str) -> Option<usize> {
    let mut offset = 0;
    while let Some(pos) = code[offset..].find(pat) {
        let abs = offset + pos;
        let boundary = abs == 0
            || !code.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && code.as_bytes()[abs - 1] != b'_';
        if boundary {
            return Some(abs);
        }
        offset = abs + pat.len();
    }
    None
}

/// `true` if the line starts a `fn` item (not `fn` inside a word, and not
/// a fn-pointer type, approximated by requiring the keyword at a token
/// boundary followed by an identifier).
fn has_fn_keyword(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find("fn ") {
        let abs = search + pos;
        let before_ok = abs == 0 || bytes[abs - 1] == b' ' || bytes[abs - 1] == b'(';
        let after = code[abs + 3..].trim_start();
        let after_ok = after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        // `Fn(`/`fn(` pointer types have `(` immediately after the keyword.
        if before_ok && after_ok {
            return true;
        }
        search = abs + 3;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> ScanReport {
        let mut report = ScanReport { violations: Vec::new(), files_scanned: 1, waivers: 0 };
        scan_file(Path::new("crates/core/src/x.rs"), text, &mut report);
        report
    }

    #[test]
    fn unwrap_fires_with_line_and_column() {
        let r = scan("fn f() {\n    thing().unwrap();\n}\n");
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!((v.rule, v.line, v.col), ("stray-unwrap", 2, 12));
        assert!(v.display(Path::new("crates")).contains("x.rs:2:12"));
    }

    #[test]
    fn literals_and_comments_do_not_fire() {
        // The historic false positives: the pattern inside a string, a
        // char-adjacent string, and a comment.
        let r = scan(
            "fn f() -> String {\n    // .unwrap() in a comment\n    \
             let s = \".unwrap() and panic!(\";\n    s.to_string()\n}\n",
        );
        assert!(
            r.violations.is_empty(),
            "{:?}",
            r.violations.iter().map(|v| v.rule).collect::<Vec<_>>()
        );
    }

    #[test]
    fn test_regions_and_waivers_are_exempt() {
        let r = scan(
            "#[cfg(test)]\nmod tests {\n    fn f() { thing().unwrap(); }\n}\n\
             fn g() { thing().unwrap(); } // xtask-allow: invariant upheld by caller\n",
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.waivers, 1);
    }

    #[test]
    fn documented_panics_allow_expect_but_not_unwrap() {
        let r = scan(
            "/// Does a thing.\n///\n/// # Panics\n/// Panics when empty.\n\
             pub fn f(v: &[u32]) -> u32 {\n    v.first().copied().expect(\"non-empty\")\n}\n",
        );
        assert!(
            r.violations.is_empty(),
            "{:?}",
            r.violations.iter().map(|v| v.rule).collect::<Vec<_>>()
        );
        let r = scan("pub fn f(v: &[u32]) -> u32 {\n    v.first().copied().expect(\"x\")\n}\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "undocumented-expect");
    }

    #[test]
    fn assert_in_pub_fn_needs_docs_but_debug_assert_is_free() {
        let r = scan("pub fn f(x: u32) {\n    assert!(x > 0);\n    debug_assert!(x < 10);\n}\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "undocumented-assert");
        assert_eq!(r.violations[0].col, 5);
        // Private fns may assert freely.
        let r = scan("fn f(x: u32) {\n    assert!(x > 0);\n}\n");
        assert!(r.violations.is_empty());
    }

    #[test]
    fn bench_dates_fire_only_under_bench() {
        let text = "fn f() { let t = SystemTime::now(); }\n";
        let mut report = ScanReport { violations: Vec::new(), files_scanned: 1, waivers: 0 };
        scan_file(Path::new("crates/bench/src/x.rs"), text, &mut report);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "bench-date");
        assert!(scan(text).violations.is_empty());
    }

    #[test]
    fn reslice_preserves_byte_columns() {
        let lines = reslice("let s = \"a { b\"; x.y();\n");
        assert!(!lines.code[0].contains('{'), "{:?}", lines.code[0]);
        // `x` sits at byte column 18 in the original line and must stay
        // there in the reconstruction.
        assert_eq!(lines.code[0].find("x.y"), Some(17));
    }
}
