//! Structural validation of Chrome trace-event JSON, for the
//! `trace-smoke` gate.
//!
//! Dependency-free on purpose: the harness re-parses the artifact the
//! `linkclust --trace` run wrote with its own tiny JSON reader, so a bug
//! in the library's hand-rolled writer cannot hide behind the library's
//! own validator. Checks the JSON Object Format of the Chrome
//! trace-event spec: a top-level object with a `traceEvents` array,
//! every event carrying a `ph` phase tag, complete (`"X"`) events
//! carrying `name`/`ts`/`dur`/`pid`/`tid`, and per-`tid` timestamps
//! monotone non-decreasing with properly nested (never partially
//! overlapping) intervals.

use std::collections::HashMap;

/// A parsed JSON value (just enough of RFC 8259 for the harness's
/// artifacts; shared with the `bench-ladder` schema check in
/// [`crate::benchcheck`]).
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one exactly.
    #[allow(clippy::float_cmp, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub(crate) fn as_index(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.trunc() == *n && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }
}

/// What a validated trace contained, for the gate's log line.
#[derive(Debug)]
pub(crate) struct TraceSummary {
    /// Number of complete (`"X"`) events.
    pub(crate) complete_events: usize,
    /// Number of distinct `tid` values among complete events.
    pub(crate) threads: usize,
    /// Events the collector dropped on ring overflow, per `otherData`.
    pub(crate) dropped: u64,
}

/// Validates `text` as a Chrome trace-event JSON file.
///
/// Returns a summary on success and a human-readable description of the
/// first structural problem otherwise.
pub(crate) fn check_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("`traceEvents` is not an array".to_string()),
        None => return Err("top-level object lacks a `traceEvents` array".to_string()),
    };
    if events.is_empty() {
        return Err("`traceEvents` is empty: the traced run recorded nothing".to_string());
    }

    // Per-tid stack of open interval ends: events arrive sorted by start
    // (checked below), so an event either nests inside the innermost
    // still-open interval or starts at/after its end.
    let mut open: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut last_start: HashMap<u64, f64> = HashMap::new();
    let mut complete_events = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} lacks a string `ph` phase tag"))?;
        match ph {
            "M" => continue, // metadata (thread names)
            "X" => {}
            other => return Err(format!("event {i} has unexpected phase {other:?}")),
        }
        complete_events += 1;
        if e.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("complete event {i} lacks a string `name`"));
        }
        let num = |key: &str| {
            e.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("complete event {i} lacks a numeric `{key}`"))
        };
        let ts = num("ts")?;
        let dur = num("dur")?;
        num("pid")?;
        let tid = num("tid")? as u64;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("complete event {i} has a negative `ts` or `dur`"));
        }

        if last_start.insert(tid, ts).is_some_and(|prev| ts < prev) {
            return Err(format!("complete event {i}: `ts` not monotone within tid {tid}"));
        }
        let stack = open.entry(tid).or_default();
        while stack.last().is_some_and(|&end| end <= ts) {
            stack.pop();
        }
        let end = ts + dur;
        if let Some(&enclosing_end) = stack.last() {
            if end > enclosing_end {
                return Err(format!(
                    "complete event {i}: interval [{ts}, {end}] partially overlaps an \
                     enclosing event ending at {enclosing_end} on tid {tid}"
                ));
            }
        }
        stack.push(end);
    }
    if complete_events == 0 {
        return Err("no complete (`\"X\"`) events in the trace".to_string());
    }

    let dropped = doc
        .get("otherData")
        .and_then(|d| d.get("events_dropped"))
        .and_then(Json::as_f64)
        .map_or(0, |v| v as u64);
    Ok(TraceSummary { complete_events, threads: open.len(), dropped })
}

/// Parses `text` as a single JSON value (with nothing but whitespace
/// after it).
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string());
            }
            Some(b'\\') => match bytes.get(*pos + 1) {
                Some(b'u') => {
                    // \uXXXX: keep the raw escape; the validator never
                    // compares decoded non-ASCII text.
                    let hex = bytes
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| "truncated \\u escape".to_string())?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("invalid \\u escape at byte {pos}"));
                    }
                    out.extend_from_slice(&bytes[*pos..*pos + 6]);
                    *pos += 6;
                }
                Some(c @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                    out.push(match c {
                        b'b' => 0x08,
                        b'f' => 0x0c,
                        b'n' => b'\n',
                        b'r' => b'\r',
                        b't' => b'\t',
                        c => *c,
                    });
                    *pos += 2;
                }
                _ => return Err(format!("invalid escape at byte {pos}")),
            },
            Some(c) if *c < 0x20 => {
                return Err(format!("unescaped control character at byte {pos}"))
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"traceEvents":[
        {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}},
        {"name":"sort","cat":"phase","ph":"X","ts":0.000,"dur":10.000,"pid":1,"tid":0},
        {"name":"sweep","cat":"phase","ph":"X","ts":2.000,"dur":3.000,"pid":1,"tid":0},
        {"name":"task-0","cat":"task","ph":"X","ts":1.500,"dur":4.000,"pid":1,"tid":1}
    ],"displayTimeUnit":"ms","otherData":{"events_dropped":2,"ring_capacity":65536}}"#;

    #[test]
    fn accepts_a_well_formed_trace() {
        let summary = check_chrome_trace(GOOD).expect("trace should validate");
        assert_eq!(summary.complete_events, 3);
        assert_eq!(summary.threads, 2);
        assert_eq!(summary.dropped, 2);
    }

    #[test]
    fn rejects_malformed_json_and_structure() {
        assert!(check_chrome_trace("{").is_err());
        assert!(check_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(check_chrome_trace("{\"traceEvents\":[]}").is_err());
        // missing dur on an X event
        let bad = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":0}]}"#;
        assert!(check_chrome_trace(bad).is_err());
        // non-monotone timestamps within a tid
        let unsorted = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":0},
            {"name":"b","ph":"X","ts":1,"dur":1,"pid":1,"tid":0}]}"#;
        assert!(check_chrome_trace(unsorted).unwrap_err().contains("monotone"));
        // partial overlap within a tid
        let overlap = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":0},
            {"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":0}]}"#;
        assert!(check_chrome_trace(overlap).unwrap_err().contains("overlaps"));
    }
}
